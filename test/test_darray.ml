(* Persistent distributed arrays: wire codecs (qcheck roundtrip and
   fuzz through the frame decoder), the segment-version protocol model,
   residency byte collapse, geometry-checked zip, halo versioning, the
   resident kernel variants' exact parity with their non-resident
   paths, and crash replay over the process transport.

   ORDER MATTERS.  Process-mode sessions fork one child per node, and
   OCaml forbids [fork] once any domain has ever been spawned, so every
   process-backend case runs in the first suite.  The Local-mode and
   pure cases that follow may spawn domains freely. *)

open Triolet_runtime
module Codec = Triolet_base.Codec
module Rw = Triolet_base.Rw
module Payload = Triolet_base.Payload
module PM = Triolet_sim.Protocol_models
module Modelcheck = Triolet_sim.Modelcheck
module Exec = Triolet.Exec
module Matrix = Triolet.Matrix
module D = Triolet_kernels.Dataset

(* Keep the parent single-domain so forking stays possible. *)
let () = Pool.set_default_width 1

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qtest ?count name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ?count ~name gen prop)

let topo ?(nodes = 4) backend =
  { Cluster.nodes; cores_per_node = 1; backend }

(* A work closure with a deterministic, order-sensitive result: the
   resident floats are summed left to right and scaled by the argument,
   so a replay that reassembled segments in any other order — or
   against any other version — would produce different bytes. *)
let sum_work ~node:_ ~resident ~arg =
  let s =
    List.fold_left
      (fun acc -> function
        | Payload.Floats f -> acc +. Float.Array.fold_left ( +. ) 0.0 f
        | Payload.Ints a -> acc +. float_of_int (Array.fold_left ( + ) 0 a)
        | Payload.Raw _ -> acc)
      0.0 resident
  in
  let scale =
    match arg with
    | [ Payload.Floats k ] -> Float.Array.get k 0
    | _ -> 1.0
  in
  [ Payload.Floats (Float.Array.make 1 (s *. scale)) ]

let scale_arg v _node = [ Payload.Floats (Float.Array.make 1 v) ]

let merge_sum acc = function
  | [ Payload.Floats f ] -> acc +. Float.Array.get f 0
  | _ -> Alcotest.fail "bad reply payload"

let seg_floats ~len v = [ Payload.Floats (Float.Array.make len v) ]

let expected_sum segs scale =
  scale
  *. Array.fold_left
       (fun acc p ->
         List.fold_left
           (fun acc -> function
             | Payload.Floats f -> acc +. Float.Array.fold_left ( +. ) 0.0 f
             | _ -> acc)
           acc p)
       0.0 segs

(* ------------------------------------------------------------------ *)
(* Process backend: warm reuse, byte collapse, and crash replay.       *)
(* (fork-dependent: must run before any domain exists)                 *)

let test_proc_warm_reuse () =
  let s =
    Darray.create_session ~topology:(topo ~nodes:2 Cluster.Process)
      ~work:sum_work ()
  in
  Fun.protect
    ~finally:(fun () -> Darray.close_session s)
    (fun () ->
      let segs = Array.init 2 (fun i -> seg_floats ~len:10_000 (float_of_int (i + 1))) in
      let d = Darray.create s ~segments:segs in
      let run scale = Darray.run1 d ~arg:(scale_arg scale) ~merge:merge_sum ~init:0.0 in
      let cold, rc = run 1.0 in
      let warm, rw = run 1.0 in
      Alcotest.(check (float 0.0)) "cold sum" (expected_sum segs 1.0) cold;
      check_bool "warm run bit-identical" true (warm = cold);
      (* Warm rounds ship key-sized reuses plus the argument: two
         orders of magnitude under the cold puts for 10k-float
         segments, and comfortably past the >=90% collapse the issue
         pins. *)
      check_bool
        (Printf.sprintf "process warm bytes collapse (cold %d, warm %d)"
           rc.Cluster.scatter_bytes rw.Cluster.scatter_bytes)
        true
        (rw.Cluster.scatter_bytes * 10 <= rc.Cluster.scatter_bytes);
      check_int "no respawns in a clean run" 0 (Darray.session_respawns s))

let test_proc_kill_mid_iteration () =
  (* The child sleeps inside [work], a sibling thread SIGKILLs it
     mid-compute, and the supervisor respawns it; the parent replays
     the dead node's segments from its retained encoded bytes and
     re-issues the slice.  The post-crash round must be bit-identical
     to the clean round before it. *)
  let slow_work ~node ~resident ~arg =
    Unix.sleepf 0.15;
    sum_work ~node ~resident ~arg
  in
  let s =
    Darray.create_session ~topology:(topo ~nodes:2 Cluster.Process)
      ~work:slow_work ()
  in
  Fun.protect
    ~finally:(fun () -> Darray.close_session s)
    (fun () ->
      let segs = Array.init 2 (fun i -> seg_floats ~len:5_000 (float_of_int (i + 1))) in
      let d = Darray.create s ~segments:segs in
      let run () = Darray.run1 d ~arg:(scale_arg 2.0) ~merge:merge_sum ~init:0.0 in
      let clean, _ = run () in
      Alcotest.(check (float 0.0)) "clean round" (expected_sum segs 2.0) clean;
      let victim =
        match Darray.proc_pids s with
        | pid :: _ -> pid
        | [] -> Alcotest.fail "no live children"
      in
      let killer =
        Thread.create
          (fun () ->
            Thread.delay 0.05;
            try Unix.kill victim Sys.sigkill with Unix.Unix_error _ -> ())
          ()
      in
      let replayed, report = run () in
      Thread.join killer;
      check_bool "post-crash round bit-identical to clean round" true
        (replayed = clean);
      check_bool "supervisor replaced the child" true
        (Darray.session_respawns s >= 1);
      check_bool "crash observed by the run" true
        (report.Cluster.crashed_nodes >= 1);
      (* And the fabric is warm again: the next round reuses. *)
      let again, r2 = run () in
      check_bool "next round still exact" true (again = clean);
      check_int "no further crashes" 0 r2.Cluster.crashed_nodes)

let test_proc_sgemm_first_round_parity () =
  (* First-iteration results over the process transport are
     byte-identical to the non-resident loop nest: children compute
     from decoded copies either way. *)
  let ctx = Exec.make ~nodes:2 ~cores_per_node:1 ~backend:Cluster.Process () in
  let a, b = D.sgemm_matrices ~seed:41 ~m:24 ~k:10 ~n:12 in
  let r = Triolet_kernels.Sgemm.Resident.create ~ctx a in
  Fun.protect
    ~finally:(fun () -> Triolet_kernels.Sgemm.Resident.close r)
    (fun () ->
      let reference = Triolet_kernels.Sgemm.run_c a b in
      let c1, rep1 = Triolet_kernels.Sgemm.Resident.multiply r b in
      check_bool "first round = run_c exactly" true
        (Triolet_kernels.Sgemm.agrees ~eps:0.0 reference c1);
      let c2, rep2 = Triolet_kernels.Sgemm.Resident.multiply r b in
      check_bool "warm round bit-identical" true
        (Triolet_kernels.Sgemm.agrees ~eps:0.0 c1 c2);
      check_bool "warm round ships fewer bytes" true
        (rep2.Cluster.scatter_bytes < rep1.Cluster.scatter_bytes))

(* ------------------------------------------------------------------ *)
(* Wire codecs: qcheck roundtrip, frame decoder, corruption.           *)

let payload_gen : Payload.t QCheck2.Gen.t =
  QCheck2.Gen.(
    list_size (int_range 1 4)
      (oneof
         [
           map
             (fun l -> Payload.Floats (Float.Array.of_list l))
             (list_size (int_bound 20) (float_range (-1000.) 1000.));
           map (fun l -> Payload.Ints (Array.of_list l)) (small_list int);
           map (fun s -> Payload.Raw s) (string_size (int_bound 30));
         ]))

let key_gen = QCheck2.Gen.(triple (int_bound 1000) (int_bound 1000) (int_bound 1000))

let roundtrips c v =
  Codec.of_bytes c (Codec.to_bytes c v) = v
  && c.Codec.size v = Bytes.length (Codec.to_bytes c v)

let prop_key_roundtrip =
  qtest "key codec roundtrips" key_gen (roundtrips Darray.key_codec)

let prop_put_roundtrip =
  qtest "put codec roundtrips"
    QCheck2.Gen.(pair key_gen payload_gen)
    (roundtrips Darray.put_codec)

let prop_reuse_roundtrip =
  qtest "reuse codec roundtrips" key_gen (roundtrips Darray.reuse_codec)

let prop_free_roundtrip =
  qtest "free codec roundtrips"
    QCheck2.Gen.(int_bound 10_000)
    (roundtrips Darray.free_codec)

let prop_task_roundtrip =
  qtest "task codec roundtrips"
    QCheck2.Gen.(
      triple (int_bound 10_000) (list_size (int_bound 6) key_gen) payload_gen)
    (roundtrips Darray.task_codec)

let prop_reply_roundtrip =
  qtest "reply codec roundtrips"
    QCheck2.Gen.(pair (int_bound 10_000) payload_gen)
    (roundtrips Darray.reply_codec)

(* Every Seg_* frame kind carries its codec's bytes through the
   incremental frame decoder, cut at arbitrary chunk boundaries:
   kinds and decoded values must both survive. *)
let seg_frame_gen =
  QCheck2.Gen.(
    list_size (1 -- 6)
      (oneof
         [
           map
             (fun (k, p) -> (Protocol.Seg_put, Codec.to_bytes Darray.put_codec (k, p)))
             (pair key_gen payload_gen);
           map
             (fun k -> (Protocol.Seg_reuse, Codec.to_bytes Darray.reuse_codec k))
             key_gen;
           map
             (fun did -> (Protocol.Seg_free, Codec.to_bytes Darray.free_codec did))
             (int_bound 1000);
         ]))

let prop_seg_frames_chunked =
  qtest "Seg_* frames survive chunked delivery"
    QCheck2.Gen.(pair seg_frame_gen (list_size (0 -- 20) (int_range 1 13)))
    (fun (frames, cuts) ->
      let stream =
        String.concat ""
          (List.map
             (fun (kind, payload) ->
               Bytes.to_string (Protocol.encode_frame ~kind payload))
             frames)
      in
      let d = Protocol.Decoder.create () in
      let pos = ref 0 in
      let cuts = if cuts = [] then [ 5 ] else cuts in
      let rec feed i =
        if !pos < String.length stream then begin
          let n =
            min (List.nth cuts (i mod List.length cuts))
              (String.length stream - !pos)
          in
          Protocol.Decoder.feed d (Bytes.of_string (String.sub stream !pos n));
          pos := !pos + n;
          feed (i + 1)
        end
      in
      feed 0;
      let out = ref [] in
      let rec drain () =
        match Protocol.Decoder.pop d with
        | Some (k, p) ->
            out := (k, Bytes.to_string p) :: !out;
            drain ()
        | None -> ()
      in
      drain ();
      List.rev !out = List.map (fun (k, p) -> (k, Bytes.to_string p)) frames
      && Protocol.Decoder.consumed d = String.length stream)

(* The checksummed envelopes refuse corruption: any single-byte flip in
   a put frame raises a typed error instead of decoding garbage into a
   child's segment table. *)
let prop_corrupt_put_refused =
  qtest "corrupted put frame always refused"
    QCheck2.Gen.(
      triple (pair key_gen payload_gen) (int_bound 100_000) (int_range 1 255))
    (fun (v, posseed, mask) ->
      let bytes = Codec.to_bytes Darray.put_codec v in
      let b = Bytes.copy bytes in
      let pos = posseed mod Bytes.length b in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
      match Codec.of_bytes Darray.put_codec b with
      | _ -> false
      | exception
          ( Codec.Checksum_mismatch _ | Codec.Trailing_bytes _ | Rw.Underflow
          | Invalid_argument _ | Out_of_memory ) ->
          true)

(* ------------------------------------------------------------------ *)
(* The segment-version protocol model.                                 *)

let test_segment_model_clean () =
  let r = PM.Segment_model.check () in
  check_bool "no violation" true (r.Modelcheck.violation = None);
  check_bool "explored seriously" true (r.Modelcheck.states > 100)

let test_segment_model_catches_stale_reuse () =
  let r = PM.Segment_model.check ~bug:PM.Segment_model.Stale_reuse () in
  match r.Modelcheck.violation with
  | None -> Alcotest.fail "stale-reuse bug not caught"
  | Some v -> check_bool "message" true (String.length v.Modelcheck.message > 0)

let test_segment_model_catches_skipped_check () =
  let r = PM.Segment_model.check ~bug:PM.Segment_model.Skip_version_check () in
  match r.Modelcheck.violation with
  | None -> Alcotest.fail "skipped version check not caught"
  | Some v -> check_bool "message" true (String.length v.Modelcheck.message > 0)

(* ------------------------------------------------------------------ *)
(* Local mode: byte collapse, updates, geometry, ghosts, free.         *)

let with_local_session ?(nodes = 4) f =
  let s =
    Darray.create_session ~topology:(topo ~nodes Cluster.Inprocess)
      ~work:sum_work ()
  in
  Fun.protect ~finally:(fun () -> Darray.close_session s) (fun () -> f s)

(* The issue's headline acceptance: once warm, a run over an unchanged
   view ships >=90% fewer scatter bytes than the cold install. *)
let test_warm_bytes_collapse () =
  with_local_session (fun s ->
      let segs =
        Array.init 4 (fun i -> seg_floats ~len:50_000 (float_of_int (i + 1)))
      in
      let d = Darray.create s ~segments:segs in
      let run () = Darray.run1 d ~arg:(scale_arg 1.0) ~merge:merge_sum ~init:0.0 in
      let cold, rc = run () in
      let warm, rw = run () in
      Alcotest.(check (float 0.0)) "sum" (expected_sum segs 1.0) cold;
      check_bool "warm bit-identical" true (warm = cold);
      check_bool
        (Printf.sprintf ">=90%% fewer warm scatter bytes (cold %d, warm %d)"
           rc.Cluster.scatter_bytes rw.Cluster.scatter_bytes)
        true
        (rw.Cluster.scatter_bytes * 10 <= rc.Cluster.scatter_bytes))

let test_update_reships_only_changed () =
  with_local_session (fun s ->
      let segs = Array.init 4 (fun _ -> seg_floats ~len:10_000 1.0) in
      let d = Darray.create s ~segments:segs in
      let run () = Darray.run1 d ~arg:(scale_arg 1.0) ~merge:merge_sum ~init:0.0 in
      let _, cold = run () in
      let _, warm = run () in
      Darray.update d 2 (seg_floats ~len:10_000 5.0);
      check_int "version bumped" 2 (Darray.segment_version d 2);
      let after, dirty = run () in
      Alcotest.(check (float 0.0)) "result reflects the update"
        (3.0 *. 10_000.0 +. 5.0 *. 10_000.0)
        after;
      (* One dirty segment: strictly more than a fully-warm round but
         about a quarter of the cold install. *)
      check_bool "dirty > warm" true
        (dirty.Cluster.scatter_bytes > warm.Cluster.scatter_bytes);
      check_bool "dirty ships ~one segment, not four" true
        (dirty.Cluster.scatter_bytes * 2 < cold.Cluster.scatter_bytes))

let test_zip_geometry_checked () =
  with_local_session (fun s ->
      let d4 = Darray.create s ~segments:(Array.init 4 (fun _ -> seg_floats ~len:100 1.0)) in
      let d4b = Darray.create s ~segments:(Array.init 4 (fun _ -> seg_floats ~len:100 2.0)) in
      let d3 = Darray.create s ~segments:(Array.init 3 (fun _ -> seg_floats ~len:100 1.0)) in
      let dshort = Darray.create s ~segments:(Array.init 4 (fun _ -> seg_floats ~len:99 1.0)) in
      (* A well-formed zip runs: each node sees both arrays' segments. *)
      let total, _ =
        Darray.run (Darray.zip2 d4 d4b) ~arg:(scale_arg 1.0) ~merge:merge_sum
          ~init:0.0
      in
      Alcotest.(check (float 0.0)) "zipped sum" (400.0 +. 800.0) total;
      let raises f =
        match f () with
        | _ -> false
        | exception Invalid_argument _ -> true
      in
      check_bool "segment count mismatch refused" true
        (raises (fun () -> Darray.zip2 d4 d3));
      check_bool "element count mismatch refused" true
        (raises (fun () -> Darray.zip2 d4 dshort));
      (* Cross-session zip refused too. *)
      with_local_session (fun s2 ->
          let foreign =
            Darray.create s2 ~segments:(Array.init 4 (fun _ -> seg_floats ~len:100 1.0))
          in
          check_bool "cross-session zip refused" true
            (raises (fun () -> Darray.zip2 d4 foreign))))

let test_ghost_versioning () =
  with_local_session ~nodes:2 (fun s ->
      let d = Darray.create s ~segments:(Array.init 2 (fun _ -> seg_floats ~len:10 1.0)) in
      check_bool "no ghost yet" true (Darray.ghost_version d 0 = None);
      check_bool "first install changes" true
        (Darray.set_ghost d 0 (seg_floats ~len:4 9.0));
      check_bool "v1" true (Darray.ghost_version d 0 = Some 1);
      check_bool "identical content keeps version" false
        (Darray.set_ghost d 0 (seg_floats ~len:4 9.0));
      check_bool "still v1" true (Darray.ghost_version d 0 = Some 1);
      check_bool "changed content bumps" true
        (Darray.set_ghost d 0 (seg_floats ~len:4 7.0));
      check_bool "v2" true (Darray.ghost_version d 0 = Some 2);
      (* exchange_halo counts exactly the ghosts that changed. *)
      check_int "converged halo ships nothing new" 1
        (Darray.exchange_halo d ~compute:(fun i ->
             if i = 0 then seg_floats ~len:4 7.0 else seg_floats ~len:4 3.0));
      check_int "fully converged" 0
        (Darray.exchange_halo d ~compute:(fun i ->
             if i = 0 then seg_floats ~len:4 7.0 else seg_floats ~len:4 3.0));
      (* Ghost contents ride with the owner's resident concatenation. *)
      let total, _ = Darray.run1 d ~arg:(scale_arg 1.0) ~merge:merge_sum ~init:0.0 in
      Alcotest.(check (float 0.0)) "primaries + ghosts summed"
        (20.0 +. (4.0 *. 7.0) +. (4.0 *. 3.0))
        total)

let test_free_refuses_further_use () =
  with_local_session (fun s ->
      let d = Darray.create s ~segments:(Array.init 2 (fun _ -> seg_floats ~len:10 1.0)) in
      let _ = Darray.run1 d ~arg:(scale_arg 1.0) ~merge:merge_sum ~init:0.0 in
      Darray.free d;
      Darray.free d;
      (* idempotent *)
      let raises f =
        match f () with
        | _ -> false
        | exception Invalid_argument _ -> true
      in
      check_bool "update refused" true
        (raises (fun () -> Darray.update d 0 (seg_floats ~len:10 2.0)));
      check_bool "run refused" true
        (raises (fun () ->
             Darray.run1 d ~arg:(scale_arg 1.0) ~merge:merge_sum ~init:0.0)))

(* ------------------------------------------------------------------ *)
(* Resident kernels: exact parity with the non-resident paths.         *)

let test_sgemm_resident_parity () =
  let ctx = Exec.make ~nodes:3 ~cores_per_node:1 ~backend:Cluster.Inprocess () in
  let a, b = D.sgemm_matrices ~seed:7 ~m:30 ~k:14 ~n:18 in
  let r = Triolet_kernels.Sgemm.Resident.create ~ctx a in
  Fun.protect
    ~finally:(fun () -> Triolet_kernels.Sgemm.Resident.close r)
    (fun () ->
      let reference = Triolet_kernels.Sgemm.run_c a b in
      let c1, rep1 = Triolet_kernels.Sgemm.Resident.multiply r b in
      check_bool "first multiply = run_c exactly" true
        (Triolet_kernels.Sgemm.agrees ~eps:0.0 reference c1);
      let c2, rep2 = Triolet_kernels.Sgemm.Resident.multiply r b in
      check_bool "warm multiply bit-identical" true
        (Triolet_kernels.Sgemm.agrees ~eps:0.0 c1 c2);
      check_bool "warm collapse" true
        (rep2.Cluster.scatter_bytes < rep1.Cluster.scatter_bytes);
      (* update_a: an unchanged A re-ships nothing; a one-row change
         re-ships exactly the blocks that hold it. *)
      check_int "identity update ships nothing" 0
        (Triolet_kernels.Sgemm.Resident.update_a r a);
      let a' = Matrix.init (Matrix.rows a) (Matrix.cols a) (fun i j ->
          if i = 0 && j = 0 then 42.0 else Matrix.get a i j)
      in
      check_int "one-element change dirties one block" 1
        (Triolet_kernels.Sgemm.Resident.update_a r a');
      let c3, _ = Triolet_kernels.Sgemm.Resident.multiply r b in
      check_bool "post-update multiply = run_c on new A" true
        (Triolet_kernels.Sgemm.agrees ~eps:0.0
           (Triolet_kernels.Sgemm.run_c a' b)
           c3))

let test_tpacf_resident_parity () =
  let ctx = Exec.make ~nodes:3 ~cores_per_node:1 ~backend:Cluster.Inprocess () in
  let data = D.tpacf ~seed:19 ~points:40 ~random_sets:3 in
  let bins = 10 in
  let reference = Triolet_kernels.Tpacf.run_c ~bins data in
  let r = Triolet_kernels.Tpacf.Resident.create ~ctx ~bins data.D.observed in
  Fun.protect
    ~finally:(fun () -> Triolet_kernels.Tpacf.Resident.close r)
    (fun () ->
      let dr1, reports = Triolet_kernels.Tpacf.Resident.dr r data.D.randoms in
      Alcotest.(check (array int)) "resident DR = run_c DR exactly"
        reference.Triolet_kernels.Tpacf.dr dr1;
      check_int "one report per round" (Array.length data.D.randoms)
        (Array.length reports);
      check_bool "later rounds cheaper than round 0" true
        (reports.(1).Cluster.scatter_bytes < reports.(0).Cluster.scatter_bytes);
      (* A second DR pass over the same randoms is fully warm. *)
      let dr2, _ = Triolet_kernels.Tpacf.Resident.dr r data.D.randoms in
      Alcotest.(check (array int)) "second pass identical" dr1 dr2)

let test_cutcp_resident_halo () =
  let ctx = Exec.make ~nodes:3 ~cores_per_node:1 ~backend:Cluster.Inprocess () in
  let data =
    D.cutcp ~seed:23 ~atoms:40 ~nx:8 ~ny:8 ~nz:12 ~spacing:0.5 ~cutoff:1.5
  in
  let reference = Triolet_kernels.Cutcp.run_c data in
  let r = Triolet_kernels.Cutcp.Resident.create ~ctx data in
  Fun.protect
    ~finally:(fun () -> Triolet_kernels.Cutcp.Resident.close r)
    (fun () ->
      let g1, rep1 = Triolet_kernels.Cutcp.Resident.potential r in
      check_bool "agrees with run_c" true
        (Triolet_kernels.Cutcp.agrees ~eps:1e-9 reference g1);
      let g2, rep2 = Triolet_kernels.Cutcp.Resident.potential r in
      check_bool "warm round bit-identical" true (g1 = g2);
      check_bool "warm collapse" true
        (rep2.Cluster.scatter_bytes < rep1.Cluster.scatter_bytes);
      (* Converged halos: nothing to re-ship. *)
      let slabs, halos = Triolet_kernels.Cutcp.Resident.resync r in
      check_int "no slab changed" 0 slabs;
      check_int "no halo changed" 0 halos;
      (* Displace one atom within its slab: the resync re-ships a
         handful of segments, and the new potential matches a fresh
         non-resident run on the displaced dataset. *)
      Triolet_kernels.Cutcp.Resident.displace r ~atom:0 ~dx:0.05 ~dy:0.05
        ~dz:0.0;
      let slabs', halos' = Triolet_kernels.Cutcp.Resident.resync r in
      (* dz = 0: the atom stays in its slab, so exactly one slab's
         payload changes; only the neighbours' halos can follow. *)
      check_int "exactly one slab re-ships" 1 slabs';
      check_bool "halos bounded by the neighbourhood" true
        (halos' >= 0 && halos' <= 2);
      let g3, _ = Triolet_kernels.Cutcp.Resident.potential r in
      check_bool "displaced potential differs" true (not (g3 = g1)))

let () =
  Alcotest.run "darray"
    [
      ( "process-backend",
        [
          Alcotest.test_case "warm reuse over the wire" `Quick
            test_proc_warm_reuse;
          Alcotest.test_case "kill mid-iteration replays exactly" `Quick
            test_proc_kill_mid_iteration;
          Alcotest.test_case "sgemm first-round parity" `Quick
            test_proc_sgemm_first_round_parity;
        ] );
      ( "codecs",
        [
          prop_key_roundtrip;
          prop_put_roundtrip;
          prop_reuse_roundtrip;
          prop_free_roundtrip;
          prop_task_roundtrip;
          prop_reply_roundtrip;
          prop_seg_frames_chunked;
          prop_corrupt_put_refused;
        ] );
      ( "segment model",
        [
          Alcotest.test_case "clean protocol passes" `Quick
            test_segment_model_clean;
          Alcotest.test_case "stale reuse caught" `Quick
            test_segment_model_catches_stale_reuse;
          Alcotest.test_case "skipped version check caught" `Quick
            test_segment_model_catches_skipped_check;
        ] );
      ( "residency",
        [
          Alcotest.test_case "warm bytes collapse >=90%" `Quick
            test_warm_bytes_collapse;
          Alcotest.test_case "update reships only changed" `Quick
            test_update_reships_only_changed;
          Alcotest.test_case "zip geometry checked" `Quick
            test_zip_geometry_checked;
          Alcotest.test_case "ghost versioning" `Quick test_ghost_versioning;
          Alcotest.test_case "free refuses further use" `Quick
            test_free_refuses_further_use;
        ] );
      ( "resident kernels",
        [
          Alcotest.test_case "sgemm exact parity + update_a" `Quick
            test_sgemm_resident_parity;
          Alcotest.test_case "tpacf DR exact parity" `Quick
            test_tpacf_resident_parity;
          Alcotest.test_case "cutcp halo exchange" `Quick
            test_cutcp_resident_halo;
        ] );
    ]
