(* The concurrency lint, exercised against seeded trees: a lock-order
   inversion, blocking under a lock, Condition.wait shape, and the
   Mutex/Atomic introduction ratchet. *)

module Lockcheck = Triolet_analysis.Lockcheck
module Passes = Triolet_analysis.Passes

let check_bool = Alcotest.(check bool)

(* Build a throwaway source tree under a fresh temp root with the
   layout the scanner expects (lib/runtime, lib/core). *)
let with_tree files f =
  let root = Filename.temp_file "triolet_lockcheck" "" in
  Sys.remove root;
  Unix.mkdir root 0o755;
  List.iter
    (fun d -> Unix.mkdir (Filename.concat root d) 0o755)
    [ "lib"; "lib/runtime"; "lib/core" ];
  let written =
    List.map
      (fun (rel, contents) ->
        let path = Filename.concat root rel in
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        path)
      files
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove written;
      List.iter
        (fun d -> Unix.rmdir (Filename.concat root d))
        [ "lib/runtime"; "lib/core"; "lib" ];
      Unix.rmdir root)
    (fun () -> f root)

let errors_of pass findings =
  List.filter
    (fun (f : Passes.finding) -> f.pass = pass && f.severity = Passes.Error)
    findings

(* --- lock-order inversion ----------------------------------------- *)

let test_inversion_detected () =
  with_tree
    [
      ( "lib/runtime/alpha.ml",
        "let m = Mutex.create ()\n\
         let f () =\n\
        \  Mutex.lock m;\n\
        \  Mutex.lock Beta.m;\n\
        \  Mutex.unlock Beta.m;\n\
        \  Mutex.unlock m\n" );
      ( "lib/runtime/beta.ml",
        "let m = Mutex.create ()\n\
         let g () =\n\
        \  Mutex.lock m;\n\
        \  Mutex.lock Alpha.m;\n\
        \  Mutex.unlock Alpha.m;\n\
        \  Mutex.unlock m\n" );
    ]
    (fun root ->
      let findings, edges = Lockcheck.run ~root () in
      check_bool "both edges found" true (List.length edges >= 2);
      let inversions =
        List.filter
          (fun (f : Passes.finding) ->
            f.severity = Passes.Error
            && f.pass = "locks"
            && String.length f.message >= 20
            && String.sub f.message 0 20 = "lock-order inversion")
          findings
      in
      check_bool "inversion reported" true (inversions <> []);
      (* The DOT artifact renders both directions. *)
      let dot = Lockcheck.dot_of_edges edges in
      check_bool "dot has edge" true
        (String.length dot > 0
        && String.index_opt dot '>' <> None))

let test_ordered_nesting_is_clean () =
  with_tree
    [
      ( "lib/runtime/alpha.ml",
        "let m = Mutex.create ()\n\
         let f () =\n\
        \  Mutex.lock m;\n\
        \  Mutex.lock Beta.m;\n\
        \  Mutex.unlock Beta.m;\n\
        \  Mutex.unlock m\n" );
      ("lib/runtime/beta.ml", "let m = Mutex.create ()\n");
    ]
    (fun root ->
      let findings, edges = Lockcheck.run ~root () in
      check_bool "one edge" true (List.length edges = 1);
      check_bool "no lock errors" true (errors_of "locks" findings = []))

(* An inversion only visible through a callee: g locks B.m via a helper
   that locks A.m transitively. *)
let test_transitive_inversion () =
  with_tree
    [
      ( "lib/runtime/alpha.ml",
        "let m = Mutex.create ()\n\
         let with_m f = Mutex.lock m; let r = f () in Mutex.unlock m; r\n\
         let f () =\n\
        \  Mutex.lock m;\n\
        \  Mutex.lock Beta.m;\n\
        \  Mutex.unlock Beta.m;\n\
        \  Mutex.unlock m\n" );
      ( "lib/runtime/beta.ml",
        "let m = Mutex.create ()\n\
         let g () =\n\
        \  Mutex.lock m;\n\
        \  Alpha.with_m (fun () -> ());\n\
        \  Mutex.unlock m\n" );
    ]
    (fun root ->
      let findings, edges = Lockcheck.run ~root () in
      check_bool "summary edge present" true
        (List.exists
           (fun (e : Lockcheck.edge) ->
             e.from_lock = "Beta.m" && e.to_lock = "Alpha.m"
             && e.via <> None)
           edges);
      check_bool "inversion reported" true (errors_of "locks" findings <> []))

(* --- blocking under a lock ---------------------------------------- *)

let test_blocking_under_lock () =
  with_tree
    [
      ( "lib/runtime/gamma.ml",
        "let m = Mutex.create ()\n\
         let f () =\n\
        \  Mutex.lock m;\n\
        \  ignore (Unix.select [] [] [] 1.0);\n\
        \  Mutex.unlock m\n" );
    ]
    (fun root ->
      let findings, _ = Lockcheck.run ~root () in
      check_bool "blocking call flagged" true
        (List.exists
           (fun (f : Passes.finding) ->
             f.pass = "locks" && f.severity = Passes.Error
             && f.plan = "lib/runtime/gamma.ml:4")
           findings))

let test_unlock_before_blocking_is_clean () =
  with_tree
    [
      ( "lib/runtime/gamma.ml",
        "let m = Mutex.create ()\n\
         let f () =\n\
        \  Mutex.lock m;\n\
        \  Mutex.unlock m;\n\
        \  ignore (Unix.select [] [] [] 1.0)\n" );
    ]
    (fun root ->
      let findings, _ = Lockcheck.run ~root () in
      check_bool "clean" true (errors_of "locks" findings = []))

(* --- Condition.wait shape ----------------------------------------- *)

let test_wait_loop_accepted () =
  with_tree
    [
      ( "lib/runtime/delta.ml",
        "let m = Mutex.create ()\n\
         let c = Condition.create ()\n\
         let ready = ref false\n\
         let wait () =\n\
        \  Mutex.lock m;\n\
        \  while not !ready do Condition.wait c m done;\n\
        \  Mutex.unlock m\n" );
    ]
    (fun root ->
      let findings, _ = Lockcheck.run ~root () in
      check_bool "wait-loop idiom is clean" true
        (errors_of "locks" findings = []))

let test_naked_wait_flagged () =
  with_tree
    [
      ( "lib/runtime/delta.ml",
        "let m = Mutex.create ()\n\
         let c = Condition.create ()\n\
         let wait () =\n\
        \  Mutex.lock m;\n\
        \  Condition.wait c m;\n\
        \  Mutex.unlock m\n" );
    ]
    (fun root ->
      let findings, _ = Lockcheck.run ~root () in
      check_bool "wait outside loop flagged" true
        (errors_of "locks" findings <> []))

let test_wait_without_mutex_flagged () =
  with_tree
    [
      ( "lib/runtime/delta.ml",
        "let m = Mutex.create ()\n\
         let c = Condition.create ()\n\
         let wait () =\n\
        \  while true do Condition.wait c m done\n" );
    ]
    (fun root ->
      let findings, _ = Lockcheck.run ~root () in
      check_bool "wait without held mutex flagged" true
        (errors_of "locks" findings <> []))

(* --- the ratchet --------------------------------------------------- *)

let test_ratchet_over_allowance () =
  with_tree
    [
      ( "lib/runtime/epsilon.ml",
        "let a = Mutex.create ()\nlet b = Atomic.make 0\n" );
    ]
    (fun root ->
      let findings, _ = Lockcheck.run ~root () in
      check_bool "unaudited introductions are errors" true
        (List.exists
           (fun (f : Passes.finding) ->
             f.pass = "lock-ratchet" && f.severity = Passes.Error
             && f.plan = "lib/runtime/epsilon.ml")
           findings))

let test_ratchet_under_allowance () =
  (* A whitelisted file (pool.ml: 7 audited sites) with fewer sites
     than its allowance asks for the allowance to be lowered. *)
  with_tree
    [ ("lib/runtime/pool.ml", "let a = Mutex.create ()\n") ]
    (fun root ->
      let findings, _ = Lockcheck.run ~root () in
      check_bool "stale allowance is an info" true
        (List.exists
           (fun (f : Passes.finding) ->
             f.pass = "lock-ratchet" && f.severity = Passes.Info
             && f.plan = "lib/runtime/pool.ml")
           findings))

let () =
  Alcotest.run "lockcheck"
    [
      ( "lock order",
        [
          Alcotest.test_case "inversion detected" `Quick
            test_inversion_detected;
          Alcotest.test_case "ordered nesting clean" `Quick
            test_ordered_nesting_is_clean;
          Alcotest.test_case "transitive inversion via summary" `Quick
            test_transitive_inversion;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "blocking under lock flagged" `Quick
            test_blocking_under_lock;
          Alcotest.test_case "unlock before blocking clean" `Quick
            test_unlock_before_blocking_is_clean;
        ] );
      ( "condition wait",
        [
          Alcotest.test_case "wait-loop accepted" `Quick
            test_wait_loop_accepted;
          Alcotest.test_case "naked wait flagged" `Quick
            test_naked_wait_flagged;
          Alcotest.test_case "wait without mutex flagged" `Quick
            test_wait_without_mutex_flagged;
        ] );
      ( "ratchet",
        [
          Alcotest.test_case "over allowance is error" `Quick
            test_ratchet_over_allowance;
          Alcotest.test_case "under allowance is info" `Quick
            test_ratchet_under_allowance;
        ] );
    ]
