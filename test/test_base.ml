(* Tests for the base library: byte I/O, codecs, payloads, vectors, RNG. *)

open Triolet_base

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-12))

(* ------------------------------------------------------------------ *)
(* Rw                                                                  *)

let test_rw_roundtrip_scalars () =
  let w = Rw.create_writer () in
  Rw.write_int w 42;
  Rw.write_int w (-7);
  Rw.write_f64 w 3.25;
  Rw.write_u8 w 200;
  Rw.write_string w "hello";
  let r = Rw.reader_of_writer w in
  check_int "int" 42 (Rw.read_int r);
  check_int "negative int" (-7) (Rw.read_int r);
  check_float "float" 3.25 (Rw.read_f64 r);
  check_int "u8" 200 (Rw.read_u8 r);
  Alcotest.(check string) "string" "hello" (Rw.read_string r)

let test_rw_int_extremes () =
  let w = Rw.create_writer () in
  Rw.write_int w max_int;
  Rw.write_int w min_int;
  Rw.write_int w 0;
  let r = Rw.reader_of_writer w in
  check_int "max_int" max_int (Rw.read_int r);
  check_int "min_int" min_int (Rw.read_int r);
  check_int "zero" 0 (Rw.read_int r)

let test_rw_float_specials () =
  let w = Rw.create_writer () in
  Rw.write_f64 w Float.infinity;
  Rw.write_f64 w Float.neg_infinity;
  Rw.write_f64 w Float.nan;
  Rw.write_f64 w (-0.0);
  let r = Rw.reader_of_writer w in
  Alcotest.(check bool) "inf" true (Rw.read_f64 r = Float.infinity);
  Alcotest.(check bool) "-inf" true (Rw.read_f64 r = Float.neg_infinity);
  Alcotest.(check bool) "nan" true (Float.is_nan (Rw.read_f64 r));
  Alcotest.(check bool) "-0.0" true (1.0 /. Rw.read_f64 r = Float.neg_infinity)

let test_rw_growth () =
  let w = Rw.create_writer ~capacity:4 () in
  for i = 0 to 999 do
    Rw.write_int w i
  done;
  check_int "length" 8000 (Rw.writer_length w);
  let r = Rw.reader_of_writer w in
  for i = 0 to 999 do
    check_int "value" i (Rw.read_int r)
  done

let test_rw_underflow () =
  let w = Rw.create_writer () in
  Rw.write_u8 w 1;
  let r = Rw.reader_of_writer w in
  ignore (Rw.read_u8 r);
  Alcotest.check_raises "underflow" Rw.Underflow (fun () ->
      ignore (Rw.read_int r))

let test_rw_floatarray_block () =
  let a = Float.Array.init 100 (fun i -> float_of_int i *. 0.5) in
  let w = Rw.create_writer () in
  Rw.write_floatarray w a 10 50;
  let r = Rw.reader_of_writer w in
  let b = Rw.read_floatarray r in
  check_int "length" 50 (Float.Array.length b);
  for i = 0 to 49 do
    check_float "elem" (float_of_int (10 + i) *. 0.5) (Float.Array.get b i)
  done

let test_rw_remaining () =
  let w = Rw.create_writer () in
  Rw.write_int w 5;
  let r = Rw.reader_of_writer w in
  check_int "before" 8 (Rw.remaining r);
  ignore (Rw.read_int r);
  check_int "after" 0 (Rw.remaining r)

let test_rw_reader_of_writer_bounded () =
  (* The zero-copy reader is bounded by the bytes *written*, not by the
     (larger) backing-buffer capacity. *)
  let w = Rw.create_writer ~capacity:1024 () in
  Rw.write_int w 7;
  let r = Rw.reader_of_writer w in
  check_int "limit is written length" 8 (Rw.remaining r);
  check_int "value" 7 (Rw.read_int r);
  Alcotest.check_raises "no read past written bytes" Rw.Underflow (fun () ->
      ignore (Rw.read_u8 r))

let test_rw_detach () =
  (* Exactly-full writer: detach hands the buffer over as-is. *)
  let w = Rw.create_writer ~capacity:16 () in
  Rw.write_int w 1;
  Rw.write_int w 2;
  let b = Rw.detach w in
  check_int "exact length" 16 (Bytes.length b);
  check_int "first" 1 (Int64.to_int (Bytes.get_int64_le b 0));
  check_int "second" 2 (Int64.to_int (Bytes.get_int64_le b 8));
  (* Partially-full writer: detach falls back to a trimmed copy. *)
  let w2 = Rw.create_writer ~capacity:64 () in
  Rw.write_u8 w2 9;
  let b2 = Rw.detach w2 in
  check_int "trimmed" 1 (Bytes.length b2);
  check_int "content" 9 (Char.code (Bytes.get b2 0))

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let test_codec_scalars () =
  check_int "int" 99 (Codec.roundtrip Codec.int 99);
  check_float "float" 2.5 (Codec.roundtrip Codec.float 2.5);
  Alcotest.(check bool) "bool t" true (Codec.roundtrip Codec.bool true);
  Alcotest.(check bool) "bool f" false (Codec.roundtrip Codec.bool false);
  Alcotest.(check string) "string" "abc" (Codec.roundtrip Codec.string "abc");
  Alcotest.(check unit) "unit" () (Codec.roundtrip Codec.unit ())

let test_codec_compounds () =
  let c = Codec.pair Codec.int Codec.string in
  Alcotest.(check (pair int string))
    "pair" (3, "x")
    (Codec.roundtrip c (3, "x"));
  let t = Codec.triple Codec.int Codec.int Codec.float in
  let a, b, f = Codec.roundtrip t (1, 2, 3.0) in
  check_int "t1" 1 a;
  check_int "t2" 2 b;
  check_float "t3" 3.0 f;
  Alcotest.(check (option int))
    "some" (Some 5)
    (Codec.roundtrip (Codec.option Codec.int) (Some 5));
  Alcotest.(check (option int))
    "none" None
    (Codec.roundtrip (Codec.option Codec.int) None);
  Alcotest.(check (list int))
    "list" [ 1; 2; 3 ]
    (Codec.roundtrip (Codec.list Codec.int) [ 1; 2; 3 ]);
  Alcotest.(check (array int))
    "array" [| 4; 5 |]
    (Codec.roundtrip (Codec.array Codec.int) [| 4; 5 |])

let test_codec_size_exact () =
  let check_size c v =
    check_int "size matches encoding"
      (Bytes.length (Codec.to_bytes c v))
      (c.Codec.size v)
  in
  check_size Codec.int 7;
  check_size Codec.string "hello world";
  check_size (Codec.list Codec.float) [ 1.0; 2.0; 3.0 ];
  check_size Codec.floatarray (Float.Array.init 17 float_of_int);
  check_size Codec.int_array [| 1; 2; 3 |];
  check_size (Codec.option (Codec.pair Codec.int Codec.int)) (Some (1, 2))

let test_codec_floatarray' () =
  let a = Float.Array.init 64 (fun i -> sin (float_of_int i)) in
  let b = Codec.roundtrip Codec.floatarray a in
  check_int "len" 64 (Float.Array.length b);
  for i = 0 to 63 do
    check_float "elem" (Float.Array.get a i) (Float.Array.get b i)
  done

let test_codec_map () =
  let c =
    Codec.map ~inj:(fun i -> `Tag i) ~proj:(fun (`Tag i) -> i) Codec.int
  in
  let (`Tag v) = Codec.roundtrip c (`Tag 9) in
  check_int "mapped" 9 v

let test_codec_block_copy_smaller () =
  (* The paper's motivation for block copies: pointer-free arrays have a
     compact flat wire format. Our boxed float array pays nothing extra
     per element, but the boxed *pair* array does. *)
  let n = 1000 in
  let fa = Float.Array.make n 1.0 in
  let pa = Array.init n (fun i -> (i, 1.0)) in
  let flat = Codec.floatarray.Codec.size fa in
  let boxed = (Codec.array (Codec.pair Codec.int Codec.float)).Codec.size pa in
  Alcotest.(check bool) "flat smaller" true (flat < boxed)

(* ------------------------------------------------------------------ *)
(* Payload                                                             *)

let test_payload_ship () =
  let p =
    [
      Payload.Floats (Float.Array.init 10 float_of_int);
      Payload.Ints [| 1; 2; 3 |];
      Payload.Raw "opaque";
    ]
  in
  let p', bytes = Payload.ship p in
  Alcotest.(check bool) "bytes positive" true (bytes > 0);
  check_int "size agrees" bytes (Payload.size p);
  match p' with
  | [ Payload.Floats f; Payload.Ints i; Payload.Raw s ] ->
      check_int "floats len" 10 (Float.Array.length f);
      check_float "floats val" 5.0 (Float.Array.get f 5);
      Alcotest.(check (array int)) "ints" [| 1; 2; 3 |] i;
      Alcotest.(check string) "raw" "opaque" s
  | _ -> Alcotest.fail "payload shape changed"

let test_payload_fresh_buffers () =
  let a = Float.Array.make 4 0.0 in
  let p, _ = Payload.ship [ Payload.Floats a ] in
  (match p with
  | [ Payload.Floats b ] ->
      Float.Array.set b 0 99.0;
      check_float "original untouched" 0.0 (Float.Array.get a 0)
  | _ -> Alcotest.fail "shape");
  ()

let test_payload_accessors () =
  let f = Float.Array.make 1 2.0 in
  check_float "floats" 2.0 (Float.Array.get (Payload.floats_exn (Payload.Floats f)) 0);
  check_int "ints" 7 (Payload.ints_exn (Payload.Ints [| 7 |])).(0);
  Alcotest.(check string) "raw" "x" (Payload.raw_exn (Payload.Raw "x"));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Payload.floats_exn: expected Floats") (fun () ->
      ignore (Payload.floats_exn (Payload.Raw "x")))

let test_payload_empty () =
  let p', bytes = Payload.ship Payload.empty in
  Alcotest.(check bool) "empty" true (p' = []);
  check_int "header only" 8 bytes

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)

let test_vec_push_get () =
  let v = Vec.create 0 in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get" 42 (Vec.get v 42);
  Vec.set v 42 1000;
  check_int "set" 1000 (Vec.get v 42)

let test_vec_to_array_list () =
  let v = Vec.create 0 in
  List.iter (Vec.push v) [ 3; 1; 4 ];
  Alcotest.(check (array int)) "array" [| 3; 1; 4 |] (Vec.to_array v);
  Alcotest.(check (list int)) "list" [ 3; 1; 4 ] (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.create 0 in
  Vec.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "neg" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v (-1)))

let test_vec_fold_iter_clear () =
  let v = Vec.create 0 in
  List.iter (Vec.push v) [ 1; 2; 3; 4 ];
  check_int "fold" 10 (Vec.fold_left ( + ) 0 v);
  let n = ref 0 in
  Vec.iter (fun _ -> incr n) v;
  check_int "iter" 4 !n;
  Vec.clear v;
  check_int "cleared" 0 (Vec.length v)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 0 to 99 do
    check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xa = List.init 10 (fun _ -> Rng.float a) in
  let xb = List.init 10 (fun _ -> Rng.float b) in
  Alcotest.(check bool) "different streams" false (xa = xb)

let test_rng_ranges () =
  let r = Rng.create 3 in
  for _ = 0 to 999 do
    let f = Rng.float r in
    Alcotest.(check bool) "unit range" true (f >= 0.0 && f < 1.0);
    let g = Rng.float_range r (-2.0) 5.0 in
    Alcotest.(check bool) "custom range" true (g >= -2.0 && g < 5.0);
    let i = Rng.int r 10 in
    Alcotest.(check bool) "int range" true (i >= 0 && i < 10)
  done

let test_rng_split_independent () =
  let r = Rng.create 11 in
  let s = Rng.split r in
  let xr = List.init 5 (fun _ -> Rng.float r) in
  let xs = List.init 5 (fun _ -> Rng.float s) in
  Alcotest.(check bool) "split differs" false (xr = xs)

let test_rng_mean () =
  let r = Rng.create 123 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float r
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)

let qtest name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen prop)

let prop_codec_int_roundtrip =
  qtest "codec int roundtrip" QCheck2.Gen.int (fun i ->
      Codec.roundtrip Codec.int i = i)

let prop_codec_string_roundtrip =
  qtest "codec string roundtrip" QCheck2.Gen.string (fun s ->
      Codec.roundtrip Codec.string s = s)

let prop_codec_list_roundtrip =
  qtest "codec int list roundtrip"
    QCheck2.Gen.(list int)
    (fun l -> Codec.roundtrip (Codec.list Codec.int) l = l)

let prop_codec_size =
  qtest "codec size = encoded length"
    QCheck2.Gen.(list (pair int string))
    (fun l ->
      let c = Codec.list (Codec.pair Codec.int Codec.string) in
      Bytes.length (Codec.to_bytes c l) = c.Codec.size l)

let prop_vec_matches_list =
  qtest "vec behaves like list append"
    QCheck2.Gen.(list int)
    (fun l ->
      let v = Vec.create 0 in
      List.iter (Vec.push v) l;
      Vec.to_list v = l)

let () =
  Alcotest.run "base"
    [
      ( "rw",
        [
          Alcotest.test_case "scalar roundtrip" `Quick test_rw_roundtrip_scalars;
          Alcotest.test_case "int extremes" `Quick test_rw_int_extremes;
          Alcotest.test_case "float specials" `Quick test_rw_float_specials;
          Alcotest.test_case "buffer growth" `Quick test_rw_growth;
          Alcotest.test_case "underflow" `Quick test_rw_underflow;
          Alcotest.test_case "floatarray block" `Quick test_rw_floatarray_block;
          Alcotest.test_case "remaining" `Quick test_rw_remaining;
          Alcotest.test_case "zero-copy reader bounded" `Quick
            test_rw_reader_of_writer_bounded;
          Alcotest.test_case "detach" `Quick test_rw_detach;
        ] );
      ( "codec",
        [
          Alcotest.test_case "scalars" `Quick test_codec_scalars;
          Alcotest.test_case "compounds" `Quick test_codec_compounds;
          Alcotest.test_case "size exact" `Quick test_codec_size_exact;
          Alcotest.test_case "floatarray" `Quick test_codec_floatarray';
          Alcotest.test_case "map" `Quick test_codec_map;
          Alcotest.test_case "block copy compact" `Quick
            test_codec_block_copy_smaller;
          prop_codec_int_roundtrip;
          prop_codec_string_roundtrip;
          prop_codec_list_roundtrip;
          prop_codec_size;
        ] );
      ( "payload",
        [
          Alcotest.test_case "ship roundtrip" `Quick test_payload_ship;
          Alcotest.test_case "fresh buffers" `Quick test_payload_fresh_buffers;
          Alcotest.test_case "accessors" `Quick test_payload_accessors;
          Alcotest.test_case "empty" `Quick test_payload_empty;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get/set" `Quick test_vec_push_get;
          Alcotest.test_case "to_array/to_list" `Quick test_vec_to_array_list;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "fold/iter/clear" `Quick test_vec_fold_iter_clear;
          prop_vec_matches_list;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "mean" `Quick test_rng_mean;
        ] );
    ]
