(* Wire-protocol spec, framing codec (fuzzed), conformance trackers,
   and the spec-driven supervisor heartbeat model. *)

module Protocol = Triolet_runtime.Protocol
module Transport = Triolet_runtime.Transport
module PM = Triolet_sim.Protocol_models
module Modelcheck = Triolet_sim.Modelcheck

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:500 ~name gen prop)

(* --- framing ------------------------------------------------------ *)

let test_frame_roundtrip () =
  List.iter
    (fun kind ->
      let payload = Bytes.of_string "hello, fabric" in
      let frame = Protocol.encode_frame ~kind payload in
      let len, k = Protocol.decode_header frame 0 in
      check_int "len" (Bytes.length payload) len;
      check_bool "kind" true (k = kind);
      Alcotest.(check string)
        "payload" "hello, fabric"
        (Bytes.sub_string frame Protocol.header_len len))
    Protocol.all_kinds

let test_bad_frames () =
  (* Unknown kind byte. *)
  (try
     ignore (Protocol.kind_of_byte '\xff');
     Alcotest.fail "kind_of_byte accepted 0xff"
   with Protocol.Bad_frame _ -> ());
  (* Absurd length claim. *)
  let hdr = Bytes.make Protocol.header_len '\xff' in
  (try
     ignore (Protocol.decode_header hdr 0);
     Alcotest.fail "decode_header accepted absurd length"
   with Protocol.Bad_frame _ -> ());
  (* The transport's kind parser raises the typed exception too. *)
  try
    ignore (Transport.kind_of_byte '\x7f');
    Alcotest.fail "Transport.kind_of_byte accepted 0x7f"
  with Protocol.Bad_frame _ -> ()

(* Transport's kind constructors are the protocol's (a type equation,
   but pin the byte codec to the shared table as well). *)
let test_transport_shares_codec () =
  List.iter
    (fun k ->
      check_bool "byte" true
        (Transport.kind_to_byte k = Protocol.kind_to_byte k))
    [ Transport.Data; Transport.Err; Transport.Nack; Transport.Ping;
      Transport.Pong ]

(* Feed a stream of well-formed frames cut at arbitrary chunk
   boundaries; the decoder must reproduce exactly the input frame
   sequence. *)
let gen_frames =
  QCheck2.Gen.(
    list_size (1 -- 8)
      (pair (int_range 0 4) (string_size (0 -- 64))))

let kind_of_int i = List.nth Protocol.all_kinds i

let test_decoder_roundtrip =
  qtest "decoder roundtrip under arbitrary chunking"
    QCheck2.Gen.(pair gen_frames (list_size (0 -- 20) (int_range 1 13)))
    (fun (frames, cuts) ->
      let stream =
        String.concat ""
          (List.map
             (fun (ki, payload) ->
               Bytes.to_string
                 (Protocol.encode_frame ~kind:(kind_of_int ki)
                    (Bytes.of_string payload)))
             frames)
      in
      let d = Protocol.Decoder.create () in
      (* Cut the stream using the cut list as successive chunk sizes,
         cycling; then feed the remainder. *)
      let pos = ref 0 in
      let cuts = if cuts = [] then [ 7 ] else cuts in
      let rec feed_chunks i =
        if !pos < String.length stream then begin
          let n =
            min (List.nth cuts (i mod List.length cuts))
              (String.length stream - !pos)
          in
          Protocol.Decoder.feed d (Bytes.of_string (String.sub stream !pos n));
          pos := !pos + n;
          feed_chunks (i + 1)
        end
      in
      feed_chunks 0;
      let out = ref [] in
      let rec drain () =
        match Protocol.Decoder.pop d with
        | Some (k, p) ->
            out := (k, Bytes.to_string p) :: !out;
            drain ()
        | None -> ()
      in
      drain ();
      List.rev !out
      = List.map (fun (ki, p) -> (kind_of_int ki, p)) frames
      && Protocol.Decoder.consumed d = String.length stream)

(* Adversarial fuzz: a decoder fed arbitrary garbage must either
   produce frames, ask for more bytes, or raise the typed Bad_frame —
   never any other exception, never loop. *)
let test_decoder_fuzz =
  qtest "decoder never crashes on garbage"
    QCheck2.Gen.(list_size (0 -- 12) (string_size (0 -- 40)))
    (fun chunks ->
      let d = Protocol.Decoder.create () in
      let ok = ref true in
      (try
         List.iter
           (fun c ->
             Protocol.Decoder.feed d (Bytes.of_string c);
             let rec drain () =
               match Protocol.Decoder.pop d with
               | Some _ -> drain ()
               | None -> ()
             in
             drain ())
           chunks
       with
      | Protocol.Bad_frame _ -> ()
      | _ -> ok := false);
      !ok)

(* --- the spec ----------------------------------------------------- *)

let test_spec_is_closed () =
  check_int "no issues" 0 (List.length (Protocol.check Protocol.spec))

(* Seed the classic drift bug: the child may send Err, but the parent's
   live state has no rule for receiving it.  The audit must object. *)
let seeded_hole =
  let spec = Protocol.spec in
  {
    spec with
    Protocol.name = "seeded-hole";
    rules =
      List.filter
        (fun (r : Protocol.rule) ->
          not
            (r.role = Protocol.Parent && r.state = "live"
           && r.event = Protocol.Recv Protocol.Err))
        spec.rules;
  }

let test_seeded_unhandled_kind () =
  let issues = Protocol.check seeded_hole in
  check_bool "audit found the hole" true (issues <> []);
  check_bool "names the kind" true
    (List.exists
       (fun (i : Protocol.issue) ->
         i.issue_kind = Some Protocol.Err && i.issue_state = "live")
       issues);
  (* And through the analyzer pass, as error findings. *)
  let fs = Triolet_analysis.Protocol_lint.check_spec seeded_hole in
  check_bool "lint reports errors" true
    (Triolet_analysis.Passes.has_errors fs)

let test_action_lookup () =
  let act state ev =
    Protocol.action_for Protocol.spec ~role:Protocol.Parent ~state ev
  in
  check_bool "live pong" true (act "live" (Protocol.Recv Protocol.Pong) <> None);
  check_bool "live eof -> backoff" true
    (act "live" Protocol.Eof = Some (Protocol.Goto "backoff"));
  check_bool "backoff elapsed -> live" true
    (act "backoff" Protocol.Backoff_elapsed = Some (Protocol.Goto "live"));
  (* Miss_limit has no meaning while backed off — that hole is real and
     the tracker counts it as a violation if ever exercised. *)
  check_bool "backoff miss unruled" true (act "backoff" Protocol.Miss_limit = None)

(* --- runtime conformance trackers --------------------------------- *)

let test_tracker_follows_spec () =
  Protocol.reset_violations ();
  let t = Protocol.make_tracker Protocol.Parent ~id:"t0" in
  Alcotest.(check string) "initial" "live" (Protocol.tracker_state t);
  Protocol.step t (Protocol.Recv Protocol.Pong);
  Protocol.step t Protocol.Eof;
  Alcotest.(check string) "after eof" "backoff" (Protocol.tracker_state t);
  Protocol.step t Protocol.Backoff_elapsed;
  Alcotest.(check string) "respawned" "live" (Protocol.tracker_state t);
  check_int "no violations" 0 (Protocol.violations ())

let test_tracker_counts_violations () =
  Protocol.reset_violations ();
  let was_debug = Protocol.debug () in
  Protocol.set_debug false;
  let t = Protocol.make_tracker Protocol.Parent ~id:"t1" in
  Protocol.step t Protocol.Eof;
  (* backoff + Miss_limit: no rule *)
  Protocol.step t Protocol.Miss_limit;
  check_int "counted" 1 (Protocol.violations ());
  Protocol.set_debug true;
  (try
     Protocol.step t Protocol.Miss_limit;
     Alcotest.fail "debug step off-spec did not raise"
   with Protocol.Violation _ -> ());
  Protocol.set_debug was_debug;
  Protocol.reset_violations ()

(* --- the heartbeat model ------------------------------------------ *)

let test_heartbeat_clean () =
  let r = PM.Heartbeat_model.check () in
  check_bool "no violation" true (r.Modelcheck.violation = None);
  check_bool "explored seriously" true (r.Modelcheck.states > 1000)

let test_heartbeat_catches_forget_inflight () =
  let r = PM.Heartbeat_model.check ~bug:PM.Heartbeat_model.Forget_inflight () in
  match r.Modelcheck.violation with
  | None -> Alcotest.fail "lost-slice bug not caught"
  | Some v ->
      check_bool "message" true
        (String.length v.Modelcheck.message > 0
        && v.Modelcheck.trace <> [])

let test_heartbeat_catches_stale_reply () =
  let r = PM.Heartbeat_model.check ~bug:PM.Heartbeat_model.No_stale_filter () in
  match r.Modelcheck.violation with
  | None -> Alcotest.fail "double-complete bug not caught"
  | Some v ->
      (* BFS reports a minimal witness; the shortest double-complete
         needs only: assign, compute, deliver, spurious reassign to the
         other child, compute, deliver — pin a tight bound so witness
         quality cannot silently regress. *)
      check_bool "minimal witness" true (List.length v.Modelcheck.trace <= 8)

let () =
  Alcotest.run "protocol"
    [
      ( "framing",
        [
          Alcotest.test_case "roundtrip all kinds" `Quick test_frame_roundtrip;
          Alcotest.test_case "bad frames are typed" `Quick test_bad_frames;
          Alcotest.test_case "transport shares codec" `Quick
            test_transport_shares_codec;
          test_decoder_roundtrip;
          test_decoder_fuzz;
        ] );
      ( "spec",
        [
          Alcotest.test_case "live spec is closed" `Quick test_spec_is_closed;
          Alcotest.test_case "seeded unhandled kind caught" `Quick
            test_seeded_unhandled_kind;
          Alcotest.test_case "action lookup" `Quick test_action_lookup;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "tracker follows spec" `Quick
            test_tracker_follows_spec;
          Alcotest.test_case "tracker counts violations" `Quick
            test_tracker_counts_violations;
        ] );
      ( "heartbeat model",
        [
          Alcotest.test_case "clean protocol passes" `Slow test_heartbeat_clean;
          Alcotest.test_case "forgotten in-flight slices caught" `Quick
            test_heartbeat_catches_forget_inflight;
          Alcotest.test_case "stale replies caught" `Quick
            test_heartbeat_catches_stale_reply;
        ] );
    ]
