(* Tests for the runtime substrate: partitioning, the Chase–Lev deque,
   the work-stealing pool, mailboxes, and the two-level cluster runtime. *)

open Triolet_runtime

let check_int = Alcotest.(check int)

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen prop)

(* Small pools keep the 1-core CI box honest while still exercising
   cross-domain paths. *)
let with_pool w f =
  let p = Pool.create ~workers:w () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)

let test_blocks_cover () =
  let parts = Partition.blocks ~parts:4 10 in
  Alcotest.(check (array (pair int int)))
    "blocks" [| (0, 3); (3, 3); (6, 2); (8, 2) |] parts

let test_blocks_more_parts_than_items () =
  let parts = Partition.blocks ~parts:10 3 in
  check_int "no empty blocks" 3 (Array.length parts);
  Alcotest.(check (array (pair int int))) "unit blocks"
    [| (0, 1); (1, 1); (2, 1) |] parts

let test_blocks_empty_range () =
  check_int "empty" 0 (Array.length (Partition.blocks ~parts:4 0))

let test_blocks_invalid () =
  Alcotest.check_raises "zero parts"
    (Invalid_argument "Partition.blocks: parts must be positive") (fun () ->
      ignore (Partition.blocks ~parts:0 5))

let test_owner_consistent () =
  for n = 1 to 30 do
    for parts = 1 to 6 do
      let blocks = Partition.blocks ~parts n in
      Array.iteri
        (fun b (off, len) ->
          for i = off to off + len - 1 do
            check_int "owner" b (Partition.owner ~parts n i)
          done)
        blocks
    done
  done

let test_grid () =
  let g = Partition.grid ~row_parts:2 ~col_parts:2 ~rows:4 ~cols:6 in
  check_int "4 blocks" 4 (Array.length g);
  let covered = Array.make (4 * 6) 0 in
  Array.iter
    (fun (r0, nr, c0, nc) ->
      for i = r0 to r0 + nr - 1 do
        for j = c0 to c0 + nc - 1 do
          covered.((i * 6) + j) <- covered.((i * 6) + j) + 1
        done
      done)
    g;
  Array.iter (fun c -> check_int "covered exactly once" 1 c) covered

let test_square_factors () =
  Alcotest.(check (pair int int)) "8" (2, 4) (Partition.square_factors 8);
  Alcotest.(check (pair int int)) "9" (3, 3) (Partition.square_factors 9);
  Alcotest.(check (pair int int)) "1" (1, 1) (Partition.square_factors 1);
  Alcotest.(check (pair int int)) "7 (prime)" (1, 7) (Partition.square_factors 7)

let test_chunk_count () =
  check_int "bounded by n" 3 (Partition.chunk_count ~workers:8 3);
  check_int "multiplied" 16 (Partition.chunk_count ~workers:4 1000);
  check_int "at least 1" 1 (Partition.chunk_count ~workers:4 0)

let prop_blocks_cover_exactly =
  qtest "blocks partition [0,n)"
    QCheck2.Gen.(pair (int_range 0 200) (int_range 1 17))
    (fun (n, parts) ->
      let blocks = Partition.blocks ~parts n in
      let seen = Array.make n false in
      Array.iter
        (fun (off, len) ->
          for i = off to off + len - 1 do
            seen.(i) <- true
          done)
        blocks;
      Array.for_all Fun.id seen
      && Array.fold_left (fun a (_, l) -> a + l) 0 blocks = n
      && Array.for_all (fun (_, l) -> l > 0) blocks)

let prop_blocks_balanced =
  qtest "block sizes differ by at most 1"
    QCheck2.Gen.(pair (int_range 1 500) (int_range 1 17))
    (fun (n, parts) ->
      let blocks = Partition.blocks ~parts n in
      let sizes = Array.map snd blocks in
      let mn = Array.fold_left min max_int sizes in
      let mx = Array.fold_left max 0 sizes in
      mx - mn <= 1)

(* ------------------------------------------------------------------ *)
(* Wsdeque                                                             *)

let test_deque_lifo_owner () =
  let q = Wsdeque.create () in
  Wsdeque.push q 1;
  Wsdeque.push q 2;
  Wsdeque.push q 3;
  Alcotest.(check (option int)) "pop newest" (Some 3) (Wsdeque.pop q);
  Alcotest.(check (option int)) "pop next" (Some 2) (Wsdeque.pop q);
  Alcotest.(check (option int)) "pop last" (Some 1) (Wsdeque.pop q);
  Alcotest.(check (option int)) "empty" None (Wsdeque.pop q)

let test_deque_steal_fifo () =
  let q = Wsdeque.create () in
  Wsdeque.push q 1;
  Wsdeque.push q 2;
  (match Wsdeque.steal q with
  | Wsdeque.Stolen v -> check_int "steal oldest" 1 v
  | _ -> Alcotest.fail "expected steal");
  Alcotest.(check (option int)) "owner gets newest" (Some 2) (Wsdeque.pop q);
  match Wsdeque.steal q with
  | Wsdeque.Empty -> ()
  | _ -> Alcotest.fail "expected empty"

let test_deque_growth () =
  let q = Wsdeque.create ~capacity:2 () in
  for i = 0 to 99 do
    Wsdeque.push q i
  done;
  check_int "size" 100 (Wsdeque.size q);
  for i = 99 downto 0 do
    Alcotest.(check (option int)) "pop" (Some i) (Wsdeque.pop q)
  done

let test_deque_interleaved () =
  let q = Wsdeque.create () in
  Wsdeque.push q 1;
  ignore (Wsdeque.pop q);
  Wsdeque.push q 2;
  Wsdeque.push q 3;
  (match Wsdeque.steal q with
  | Wsdeque.Stolen v -> check_int "steals 2" 2 v
  | _ -> Alcotest.fail "steal");
  Alcotest.(check (option int)) "pops 3" (Some 3) (Wsdeque.pop q);
  Alcotest.(check (option int)) "drained" None (Wsdeque.pop q)

let test_deque_concurrent_consistency () =
  (* One owner popping, one thief stealing: every element is delivered
     exactly once. *)
  let n = 10_000 in
  let q = Wsdeque.create () in
  for i = 0 to n - 1 do
    Wsdeque.push q i
  done;
  let stolen = ref [] in
  let thief =
    Domain.spawn (fun () ->
        let rec loop () =
          match Wsdeque.steal q with
          | Wsdeque.Stolen v ->
              stolen := v :: !stolen;
              loop ()
          | Wsdeque.Retry -> loop ()
          | Wsdeque.Empty -> if Wsdeque.size q > 0 then loop ()
        in
        loop ())
  in
  let popped = ref [] in
  let rec drain () =
    match Wsdeque.pop q with
    | Some v ->
        popped := v :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Domain.join thief;
  let all = List.sort compare (!stolen @ !popped) in
  check_int "all delivered exactly once" n (List.length all);
  Alcotest.(check bool) "no duplicates/losses" true
    (all = List.init n Fun.id)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let test_pool_parallel_for_covers () =
  with_pool 3 (fun p ->
      let hits = Array.make 1000 0 in
      Pool.parallel_for p ~lo:0 ~hi:1000 (fun i -> hits.(i) <- hits.(i) + 1);
      Array.iter (fun h -> check_int "each index once" 1 h) hits)

let test_pool_parallel_reduce () =
  with_pool 3 (fun p ->
      let s =
        Pool.parallel_reduce p ~lo:0 ~hi:10_001 ~f:(fun i -> i) ~merge:( + )
          ~init:0 ()
      in
      check_int "gauss" 50_005_000 s)

let test_pool_parallel_chunks_merge () =
  with_pool 2 (fun p ->
      let chunks = Partition.blocks ~parts:8 100 in
      let total =
        Pool.parallel_chunks p ~chunks
          ~f:(fun off len ->
            let s = ref 0 in
            for i = off to off + len - 1 do
              s := !s + i
            done;
            !s)
          ~merge:( + ) ~init:0
      in
      check_int "sum 0..99" 4950 total)

let test_pool_empty_range () =
  with_pool 2 (fun p ->
      Pool.parallel_for p ~lo:5 ~hi:5 (fun _ -> Alcotest.fail "no work");
      check_int "reduce empty" 42
        (Pool.parallel_reduce p ~lo:0 ~hi:0 ~f:(fun _ -> 0) ~merge:( + )
           ~init:42 ()))

let test_pool_single_worker () =
  with_pool 1 (fun p ->
      let s =
        Pool.parallel_reduce p ~lo:0 ~hi:100 ~f:Fun.id ~merge:( + ) ~init:0 ()
      in
      check_int "sequential pool" 4950 s)

let test_pool_irregular_work () =
  (* Irregular chunk costs with stealing: correctness is unaffected. *)
  with_pool 4 (fun p ->
      let n = 200 in
      let result =
        Pool.parallel_reduce p ~grain:4 ~lo:0 ~hi:n
          ~f:(fun i ->
            (* skewed work: later indices spin longer *)
            let acc = ref 0 in
            for _ = 0 to i * 50 do
              incr acc
            done;
            ignore !acc;
            i)
          ~merge:( + ) ~init:0 ()
      in
      check_int "sum" (n * (n - 1) / 2) result)

(* ---- Adaptive lazy-splitting scheduler ---- *)

(* Adversarially skewed per-element costs; each returns the spin count
   for index [i] so the workload is deterministic. *)
let skew_shapes =
  [
    ("hot-head", fun i -> if i < 8 then 4000 else 1);
    ("hot-tail", fun i -> if i >= 992 then 4000 else 1);
    ("single-spike", fun i -> if i = 313 then 200_000 else 1);
    ("zipf-ish", fun i -> 20_000 / (i + 1));
    ("sawtooth", fun i -> if i mod 97 = 0 then 3000 else 2);
  ]

let spin k =
  let acc = ref 0 in
  for _ = 1 to k do
    incr acc
  done;
  !acc

let test_pool_skewed_matches_sequential () =
  (* The scheduler must compute exactly the sequential fold no matter
     how skewed the per-element cost is, at every pool width. *)
  let n = 1000 in
  List.iter
    (fun (name, cost) ->
      let f i =
        ignore (spin (cost i));
        (2 * i) + 1
      in
      let expected = ref 0 in
      for i = 0 to n - 1 do
        expected := !expected + f i
      done;
      List.iter
        (fun width ->
          with_pool width (fun p ->
              let got =
                Pool.parallel_reduce p ~grain:1 ~lo:0 ~hi:n ~f ~merge:( + )
                  ~init:0 ()
              in
              check_int (Printf.sprintf "%s @ width %d" name width) !expected
                got))
        [ 1; 2; 4 ])
    skew_shapes

let test_pool_parallel_range_covers () =
  (* Every index of the range reaches [f] exactly once, via grains that
     tile the range. *)
  with_pool 4 (fun p ->
      let n = 4097 in
      let hits = Array.make n (-1) in
      let lock = Mutex.create () in
      let spans =
        Pool.parallel_range p ~grain:16 ~lo:100 ~hi:(100 + n)
          ~f:(fun off len ->
            Mutex.lock lock;
            for i = off to off + len - 1 do
              hits.(i - 100) <- hits.(i - 100) + 1
            done;
            Mutex.unlock lock;
            [ (off, len) ])
          ~merge:( @ ) ~init:[] ()
      in
      Array.iteri (fun i h -> check_int (string_of_int i) 0 h) hits;
      check_int "span lengths tile the range" n
        (List.fold_left (fun a (_, l) -> a + l) 0 spans);
      List.iter
        (fun (off, len) ->
          Alcotest.(check bool) "span inside range" true
            (off >= 100 && len > 0 && off + len <= 100 + n))
        spans)

let test_pool_range_exception () =
  (* A user exception mid-range is re-raised on the caller and leaves
     the pool reusable. *)
  with_pool 4 (fun p ->
      Alcotest.check_raises "re-raised" (Failure "boom") (fun () ->
          ignore
            (Pool.parallel_reduce p ~grain:1 ~lo:0 ~hi:1000
               ~f:(fun i -> if i = 500 then failwith "boom" else i)
               ~merge:( + ) ~init:0 ()));
      check_int "pool still works" 4950
        (Pool.parallel_reduce p ~lo:0 ~hi:100 ~f:Fun.id ~merge:( + ) ~init:0 ()))

let test_pool_per_worker_stats () =
  (* Per-worker counters reconcile with the global aggregates, and an
     adversarial workload at width 4 shows adaptive activity: ranges
     were split, and every chunk is accounted to some worker. *)
  with_pool 4 (fun p ->
      let n = 2000 in
      let (), delta =
        Stats.measure (fun () ->
            ignore
              (Pool.parallel_reduce p ~grain:1 ~lo:0 ~hi:n
                 ~f:(fun i -> spin (if i < 16 then 50_000 else 1))
                 ~merge:( + ) ~init:0 ()))
      in
      Alcotest.(check bool) "at least 4 worker slots" true
        (Array.length delta.Stats.per_worker >= 4);
      let sum field =
        Array.fold_left (fun a w -> a + field w) 0 delta.Stats.per_worker
      in
      check_int "worker chunks sum to global"
        delta.Stats.chunks_run
        (sum (fun w -> w.Stats.w_chunks));
      check_int "worker steals sum to global" delta.Stats.steals
        (sum (fun w -> w.Stats.w_steals));
      check_int "worker splits sum to global" delta.Stats.splits
        (sum (fun w -> w.Stats.w_splits));
      Alcotest.(check bool) "ranges were split" true (delta.Stats.splits > 0);
      Alcotest.(check bool) "all iterations ran" true
        (delta.Stats.chunks_run >= 1))

let test_pool_grain_policy () =
  check_int "floors at 1" 1 (Partition.grain ~workers:8 10);
  check_int "scales with n" 10 (Partition.grain ~workers:4 1280);
  check_int "caps at max_grain" 8192 (Partition.grain ~workers:1 10_000_000);
  check_int "custom cap" 64 (Partition.grain ~max_grain:64 ~workers:1 1_000_000);
  check_int "empty range" 1 (Partition.grain ~workers:4 0);
  Alcotest.check_raises "bad workers" (Invalid_argument "Partition.grain")
    (fun () -> ignore (Partition.grain ~workers:0 10))

let test_deque_range_task_stress () =
  (* Concurrent owner + thieves moving range tasks: no range is lost or
     duplicated, and the delivered ranges tile [0, n) exactly.  The
     owner splits ranges like the scheduler does; thieves steal whole
     ranges. *)
  let n = 1 lsl 16 in
  let q = Wsdeque.create () in
  Wsdeque.push q (0, n);
  let nthieves = 3 in
  let stolen = Array.make nthieves [] in
  let stop = Atomic.make false in
  let thieves =
    Array.init nthieves (fun k ->
        Domain.spawn (fun () ->
            let rec loop () =
              match Wsdeque.steal q with
              | Wsdeque.Stolen r ->
                  stolen.(k) <- r :: stolen.(k);
                  loop ()
              | Wsdeque.Retry -> loop ()
              | Wsdeque.Empty -> if not (Atomic.get stop) then loop ()
            in
            loop ()))
  in
  let kept = ref [] in
  let rec drain () =
    match Wsdeque.pop q with
    | Some (lo, hi) ->
        let len = hi - lo in
        if len > 4 then begin
          (* split like the scheduler: keep the smaller half, publish
             the larger half for thieves *)
          let mid = lo + (len / 2) in
          Wsdeque.push q (mid, hi);
          kept := (lo, mid) :: !kept
        end
        else kept := (lo, hi) :: !kept;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  Array.iter Domain.join thieves;
  let all =
    Array.fold_left (fun acc l -> l @ acc) !kept stolen
    |> List.sort compare
  in
  (* Thieves keep whole stolen ranges (no re-splitting), so delivered
     ranges must be disjoint and tile [0, n). *)
  let covered = List.fold_left (fun a (lo, hi) -> a + (hi - lo)) 0 all in
  check_int "total length tiles [0,n)" n covered;
  let rec contiguous pos = function
    | [] -> pos = n
    | (lo, hi) :: rest -> lo = pos && hi > lo && contiguous hi rest
  in
  Alcotest.(check bool) "disjoint and gap-free" true (contiguous 0 all)

let test_pool_reuse_across_jobs () =
  with_pool 3 (fun p ->
      for round = 1 to 20 do
        let s =
          Pool.parallel_reduce p ~lo:0 ~hi:(round * 10) ~f:Fun.id
            ~merge:( + ) ~init:0 ()
        in
        check_int "round" (round * 10 * ((round * 10) - 1) / 2) s
      done)

let test_pool_nonuniform_merge_type () =
  with_pool 2 (fun p ->
      let l =
        Pool.parallel_chunks p
          ~chunks:(Partition.blocks ~parts:5 50)
          ~f:(fun off len -> [ (off, len) ])
          ~merge:( @ ) ~init:[]
      in
      check_int "all chunks reported" 5 (List.length l);
      check_int "total" 50 (List.fold_left (fun a (_, l) -> a + l) 0 l))

(* ------------------------------------------------------------------ *)
(* Mailbox                                                             *)

let test_mailbox_fifo () =
  let mb = Mailbox.create () in
  Mailbox.send mb (Bytes.of_string "one");
  Mailbox.send mb (Bytes.of_string "two");
  Alcotest.(check string) "fifo 1" "one" (Bytes.to_string (Mailbox.recv mb));
  Alcotest.(check string) "fifo 2" "two" (Bytes.to_string (Mailbox.recv mb))

let test_mailbox_counters () =
  let mb = Mailbox.create () in
  Mailbox.send mb (Bytes.create 10);
  Mailbox.send mb (Bytes.create 20);
  let msgs, bytes = Mailbox.totals mb in
  check_int "messages" 2 msgs;
  check_int "bytes" 30 bytes;
  check_int "pending" 2 (Mailbox.pending mb)

let test_mailbox_try_recv () =
  let mb = Mailbox.create () in
  Alcotest.(check bool) "empty" true (Mailbox.try_recv mb = None);
  Mailbox.send mb (Bytes.of_string "x");
  Alcotest.(check bool) "nonempty" true (Mailbox.try_recv mb <> None)

let test_mailbox_cross_domain () =
  let mb = Mailbox.create () in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to 99 do
          let b = Bytes.create 8 in
          Bytes.set_int64_le b 0 (Int64.of_int i);
          Mailbox.send mb b
        done)
  in
  let received = ref [] in
  for _ = 0 to 99 do
    let b = Mailbox.recv mb in
    received := Int64.to_int (Bytes.get_int64_le b 0) :: !received
  done;
  Domain.join producer;
  Alcotest.(check (list int)) "ordered delivery" (List.init 100 Fun.id)
    (List.rev !received)

(* ------------------------------------------------------------------ *)
(* Cluster                                                             *)

module Payload = Triolet_base.Payload
module Codec = Triolet_base.Codec

let test_cluster_scatter_gather () =
  with_pool 2 (fun pool ->
      let cfg = { Cluster.nodes = 4; cores_per_node = 2; flat = false } in
      let data = Float.Array.init 100 float_of_int in
      let blocks = Partition.blocks ~parts:4 100 in
      let total, report =
        Cluster.run ~pool cfg
          ~scatter:(fun node ->
            let off, len = blocks.(node) in
            [ Payload.Floats (Float.Array.sub data off len) ])
          ~work:(fun ~node:_ ~pool:_ payload ->
            match payload with
            | [ Payload.Floats f ] -> Float.Array.fold_left ( +. ) 0.0 f
            | _ -> Alcotest.fail "bad payload")
          ~result_codec:Codec.float ~merge:( +. ) ~init:0.0
      in
      Alcotest.(check (float 1e-9)) "sum" 4950.0 total;
      check_int "scatter msgs" 4 report.Cluster.scatter_messages;
      check_int "gather msgs" 4 report.Cluster.gather_messages;
      Alcotest.(check bool) "bytes counted" true (report.Cluster.scatter_bytes > 800))

let test_cluster_data_isolation () =
  (* A node must not be able to mutate the sender's buffer: payloads are
     decoded into fresh arrays. *)
  with_pool 2 (fun pool ->
      let cfg = { Cluster.nodes = 1; cores_per_node = 1; flat = false } in
      let data = Float.Array.make 8 1.0 in
      let (), _ =
        Cluster.run ~pool cfg
          ~scatter:(fun _ -> [ Payload.Floats data ])
          ~work:(fun ~node:_ ~pool:_ payload ->
            match payload with
            | [ Payload.Floats f ] -> Float.Array.set f 0 999.0
            | _ -> ())
          ~result_codec:Codec.unit
          ~merge:(fun () () -> ())
          ~init:()
      in
      Alcotest.(check (float 0.0)) "sender untouched" 1.0 (Float.Array.get data 0))

let test_cluster_flat_mode_worker_count () =
  with_pool 2 (fun pool ->
      let cfg = { Cluster.nodes = 2; cores_per_node = 3; flat = true } in
      let seen = ref 0 in
      let (), report =
        Cluster.run ~pool cfg
          ~scatter:(fun _ -> Payload.empty)
          ~work:(fun ~node:_ ~pool:_ _ -> incr seen)
          ~result_codec:Codec.unit
          ~merge:(fun () () -> ())
          ~init:()
      in
      check_int "one process per core" 6 !seen;
      check_int "six scatter messages" 6 report.Cluster.scatter_messages)

let test_cluster_merge_order () =
  with_pool 2 (fun pool ->
      let cfg = { Cluster.nodes = 3; cores_per_node = 1; flat = false } in
      let order, _ =
        Cluster.run ~pool cfg
          ~scatter:(fun node -> [ Payload.Ints [| node |] ])
          ~work:(fun ~node:_ ~pool:_ payload ->
            match payload with
            | [ Payload.Ints a ] -> a.(0)
            | _ -> -1)
          ~result_codec:Codec.int
          ~merge:(fun acc v -> acc @ [ v ])
          ~init:[]
      in
      Alcotest.(check (list int)) "node order" [ 0; 1; 2 ] order)

let test_cluster_invalid_config () =
  Alcotest.check_raises "bad config" (Invalid_argument "Cluster.run: bad config")
    (fun () ->
      ignore
        (Cluster.run
           { Cluster.nodes = 0; cores_per_node = 1; flat = false }
           ~scatter:(fun _ -> Payload.empty)
           ~work:(fun ~node:_ ~pool:_ _ -> ())
           ~result_codec:Codec.unit
           ~merge:(fun () () -> ())
           ~init:()))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_stats_measure () =
  Stats.reset ();
  let (), delta =
    Stats.measure (fun () ->
        Stats.record_message ~bytes:100;
        Stats.record_message ~bytes:50;
        Stats.record_chunk ())
  in
  check_int "messages" 2 delta.Stats.messages;
  check_int "bytes" 150 delta.Stats.bytes_sent;
  check_int "chunks" 1 delta.Stats.chunks_run

let () =
  Alcotest.run "runtime"
    [
      ( "partition",
        [
          Alcotest.test_case "blocks cover" `Quick test_blocks_cover;
          Alcotest.test_case "more parts than items" `Quick
            test_blocks_more_parts_than_items;
          Alcotest.test_case "empty range" `Quick test_blocks_empty_range;
          Alcotest.test_case "invalid" `Quick test_blocks_invalid;
          Alcotest.test_case "owner consistent" `Quick test_owner_consistent;
          Alcotest.test_case "2d grid" `Quick test_grid;
          Alcotest.test_case "square factors" `Quick test_square_factors;
          Alcotest.test_case "chunk count" `Quick test_chunk_count;
          prop_blocks_cover_exactly;
          prop_blocks_balanced;
        ] );
      ( "wsdeque",
        [
          Alcotest.test_case "owner LIFO" `Quick test_deque_lifo_owner;
          Alcotest.test_case "thief FIFO" `Quick test_deque_steal_fifo;
          Alcotest.test_case "growth" `Quick test_deque_growth;
          Alcotest.test_case "interleaved" `Quick test_deque_interleaved;
          Alcotest.test_case "concurrent exactly-once" `Quick
            test_deque_concurrent_consistency;
          Alcotest.test_case "range-task stress" `Quick
            test_deque_range_task_stress;
        ] );
      ( "pool",
        [
          Alcotest.test_case "parallel_for covers" `Quick
            test_pool_parallel_for_covers;
          Alcotest.test_case "parallel_reduce" `Quick test_pool_parallel_reduce;
          Alcotest.test_case "parallel_chunks merge" `Quick
            test_pool_parallel_chunks_merge;
          Alcotest.test_case "empty ranges" `Quick test_pool_empty_range;
          Alcotest.test_case "single worker" `Quick test_pool_single_worker;
          Alcotest.test_case "irregular work" `Quick test_pool_irregular_work;
          Alcotest.test_case "reuse across jobs" `Quick
            test_pool_reuse_across_jobs;
          Alcotest.test_case "list-valued merge" `Quick
            test_pool_nonuniform_merge_type;
          Alcotest.test_case "skewed matches sequential" `Quick
            test_pool_skewed_matches_sequential;
          Alcotest.test_case "parallel_range covers" `Quick
            test_pool_parallel_range_covers;
          Alcotest.test_case "range exception" `Quick test_pool_range_exception;
          Alcotest.test_case "per-worker stats" `Quick
            test_pool_per_worker_stats;
          Alcotest.test_case "grain policy" `Quick test_pool_grain_policy;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "counters" `Quick test_mailbox_counters;
          Alcotest.test_case "try_recv" `Quick test_mailbox_try_recv;
          Alcotest.test_case "cross-domain" `Quick test_mailbox_cross_domain;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "scatter/gather" `Quick test_cluster_scatter_gather;
          Alcotest.test_case "data isolation" `Quick test_cluster_data_isolation;
          Alcotest.test_case "flat mode" `Quick
            test_cluster_flat_mode_worker_count;
          Alcotest.test_case "merge order" `Quick test_cluster_merge_order;
          Alcotest.test_case "invalid config" `Quick test_cluster_invalid_config;
        ] );
      ("stats", [ Alcotest.test_case "measure" `Quick test_stats_measure ]);
    ]
