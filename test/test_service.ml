(* Long-lived service fabric tests: supervision, heartbeats, deadlines,
   admission control — and the chaos soak.

   ORDER MATTERS, as in test_transport.ml: the service forks (and
   re-forks, on respawn), so the parent must never spawn a domain.
   Client concurrency below is systhreads throughout. *)

open Triolet_runtime
module Payload = Triolet_base.Payload
module Rng = Triolet_base.Rng

(* Keep the parent single-domain so forking stays possible. *)
let () = Pool.set_default_width 1

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The canonical request: k int slices in, each mapped x -> 2x + 1.
   Node-independent, so results are byte-identical whichever child (or
   surviving re-executor) computes them. *)
let double_inc ~node:_ ~pool:_ payload =
  match payload with
  | [ Payload.Ints a ] -> [ Payload.Ints (Array.map (fun x -> (2 * x) + 1) a) ]
  | _ -> failwith "bad payload"

let request ~slices ~base =
  Array.init slices (fun i ->
      [ Payload.Ints (Array.init 8 (fun j -> base + (i * 100) + j)) ])

let expected payloads =
  Array.map
    (fun p ->
      match p with
      | [ Payload.Ints a ] ->
          [ Payload.Ints (Array.map (fun x -> (2 * x) + 1) a) ]
      | _ -> assert false)
    payloads

let payloads_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> x = y) a b

let with_service ?(cfg = Service.default_config) ~work f =
  let t = Service.create ~cfg ~work () in
  Fun.protect ~finally:(fun () -> Service.shutdown ~grace:2.0 t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Clean path.                                                         *)

let test_basic_roundtrip () =
  let cfg = { Service.default_config with nodes = 3; cores_per_node = 1 } in
  with_service ~cfg ~work:double_inc (fun t ->
      for r = 0 to 4 do
        let req = request ~slices:5 ~base:(r * 1000) in
        match Service.submit t req with
        | Ok results ->
            check_bool
              (Printf.sprintf "request %d exact" r)
              true
              (payloads_equal (expected req) results)
        | Error e -> Alcotest.fail (Service.error_to_string e)
      done;
      check_int "all nodes live" 3 (List.length (Service.live_nodes t)))

let test_concurrent_clients () =
  let cfg = { Service.default_config with nodes = 2; cores_per_node = 1 } in
  with_service ~cfg ~work:double_inc (fun t ->
      let failures = Atomic.make 0 in
      let client c () =
        for r = 0 to 7 do
          let req = request ~slices:3 ~base:((c * 10000) + (r * 100)) in
          match Service.submit t req with
          | Ok results when payloads_equal (expected req) results -> ()
          | Ok _ | Error _ -> Atomic.incr failures
        done
      in
      let threads = List.init 4 (fun c -> Thread.create (client c) ()) in
      List.iter Thread.join threads;
      check_int "every request exact" 0 (Atomic.get failures))

(* ------------------------------------------------------------------ *)
(* Admission control and drain.                                        *)

let slow_work ~node ~pool payload =
  Unix.sleepf 0.05;
  double_inc ~node ~pool payload

let test_overload_sheds () =
  let cfg =
    { Service.default_config with nodes = 1; cores_per_node = 1;
      queue_bound = 2 }
  in
  with_service ~cfg ~work:slow_work (fun t ->
      Stats.reset ();
      let outcomes = Array.make 8 (Error Service.Draining) in
      let client i () =
        outcomes.(i) <- Service.submit t (request ~slices:1 ~base:i)
      in
      let threads = Array.to_list (Array.init 8 (fun i -> Thread.create (client i) ())) in
      List.iter Thread.join threads;
      let ok, shed, other =
        Array.fold_left
          (fun (ok, shed, other) o ->
            match o with
            | Ok _ -> (ok + 1, shed, other)
            | Error Service.Overloaded -> (ok, shed + 1, other)
            | Error _ -> (ok, shed, other + 1))
          (0, 0, 0) outcomes
      in
      check_int "nothing failed outright" 0 other;
      check_bool "some requests admitted" true (ok >= 1);
      check_bool "overload shed load" true (shed >= 1);
      check_bool "shed counter recorded" true ((Stats.snapshot ()).Stats.shed >= shed))

let test_drain_refuses () =
  let cfg = { Service.default_config with nodes = 1; cores_per_node = 1 } in
  let t = Service.create ~cfg ~work:double_inc () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown ~grace:2.0 t)
    (fun () ->
      (match Service.submit t (request ~slices:1 ~base:0) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Service.error_to_string e));
      Service.drain t;
      match Service.submit t (request ~slices:1 ~base:1) with
      | Error Service.Draining -> ()
      | Ok _ -> Alcotest.fail "drained service accepted work"
      | Error e -> Alcotest.fail (Service.error_to_string e))

(* ------------------------------------------------------------------ *)
(* Deadlines.                                                          *)

let test_deadline_expires () =
  let cfg = { Service.default_config with nodes = 1; cores_per_node = 1 } in
  with_service ~cfg ~work:slow_work (fun t ->
      Stats.reset ();
      (* Generous budget: completes. *)
      (match Service.submit ~deadline:5.0 t (request ~slices:1 ~base:0) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Service.error_to_string e));
      (* Budget shorter than one slice's compute: cancelled, and the
         worker never burned the remaining slices. *)
      (match Service.submit ~deadline:0.02 t (request ~slices:4 ~base:1) with
      | Error Service.Deadline_expired -> ()
      | Ok _ -> Alcotest.fail "impossible deadline met"
      | Error e -> Alcotest.fail (Service.error_to_string e));
      check_bool "deadline counter recorded" true
        ((Stats.snapshot ()).Stats.deadline_expired >= 1);
      (* The service survives an expired request. *)
      match Service.submit t (request ~slices:1 ~base:2) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Service.error_to_string e))

(* ------------------------------------------------------------------ *)
(* Supervision: external kills, heartbeat loss, respawn convergence.    *)

let await ?(timeout = 10.0) pred msg =
  let deadline = Clock.monotonic_ns () + int_of_float (timeout *. 1e9) in
  let rec go () =
    if pred () then ()
    else if Clock.monotonic_ns () > deadline then Alcotest.fail msg
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let test_kill_respawn_converges () =
  let cfg =
    { Service.default_config with nodes = 3; cores_per_node = 1;
      heartbeat_interval = 0.02; respawn_backoff = 0.005 }
  in
  with_service ~cfg ~work:double_inc (fun t ->
      let req = request ~slices:6 ~base:0 in
      (match Service.submit t req with
      | Ok r -> check_bool "before kill" true (payloads_equal (expected req) r)
      | Error e -> Alcotest.fail (Service.error_to_string e));
      (* SIGKILL a child out from under the service. *)
      Unix.kill (Service.node_pids t).(1) Sys.sigkill;
      (* Requests keep completing exactly throughout the death. *)
      for r = 1 to 5 do
        let req = request ~slices:6 ~base:(r * 1000) in
        match Service.submit t req with
        | Ok res ->
            check_bool
              (Printf.sprintf "during recovery %d" r)
              true
              (payloads_equal (expected req) res)
        | Error e -> Alcotest.fail (Service.error_to_string e)
      done;
      await
        (fun () -> List.length (Service.live_nodes t) = 3)
        "fabric never converged back to 3 nodes";
      check_bool "respawn happened" true (Service.respawns t >= 1))

let test_heartbeat_loss_detected () =
  (* Every pong is dropped by the injector: silence trips the miss
     threshold, the child is declared dead, killed, and respawned —
     even though it never actually crashed. *)
  let faults = Fault.spec ~seed:7 ~heartbeat_loss:1.0 () in
  let cfg =
    { Service.default_config with nodes = 2; cores_per_node = 1;
      heartbeat_interval = 0.01; miss_threshold = 2;
      respawn_backoff = 0.005; faults = Some faults }
  in
  with_service ~cfg ~work:double_inc (fun t ->
      Stats.reset ();
      await
        (fun () -> Service.heartbeat_misses t >= 1 && Service.respawns t >= 1)
        "heartbeat loss never tripped the miss threshold";
      check_bool "stats heartbeat misses" true
        ((Stats.snapshot ()).Stats.heartbeat_misses >= 1);
      check_bool "stats respawns" true ((Stats.snapshot ()).Stats.respawns >= 1);
      (* Work still completes under permanent heartbeat loss: churn
         costs latency, not answers. *)
      let req = request ~slices:4 ~base:0 in
      match Service.submit t req with
      | Ok r -> check_bool "exact under churn" true (payloads_equal (expected req) r)
      | Error e -> Alcotest.fail (Service.error_to_string e))

let test_crash_on_respawn_backoff () =
  (* Every respawn dies young: the supervisor must keep escalating the
     backoff rather than busy-looping the fork path, and the injector
     counts each sacrifice. *)
  let faults = Fault.spec ~seed:11 ~crash_on_respawn:1.0 () in
  let cfg =
    { Service.default_config with nodes = 2; cores_per_node = 1;
      heartbeat_interval = 0.01; respawn_backoff = 0.005;
      respawn_backoff_max = 0.05; faults = Some faults }
  in
  with_service ~cfg ~work:double_inc (fun t ->
      Unix.kill (Service.node_pids t).(0) Sys.sigkill;
      await
        (fun () -> Service.respawns t >= 3)
        "flapping node was not respawned repeatedly";
      match Service.fault_counters t with
      | Some c -> check_bool "respawn crashes counted" true (c.Fault.respawn_crashes >= 2)
      | None -> Alcotest.fail "no fault counters")

let test_backoff_sequence () =
  (* The pure sequence a flapping node sleeps: base, doubling, clamped
     at max before each sleep, then pinned at max. *)
  Alcotest.(check (list (float 1e-12)))
    "base, 2x, 4x, max, max"
    [ 0.01; 0.02; 0.04; 0.05; 0.05 ]
    (Supervisor.backoff_sequence ~base:0.01 ~max:0.05 5);
  (* Clamp-before-sleep: even the first delay never exceeds max. *)
  Alcotest.(check (list (float 1e-12)))
    "first sleep already clamped"
    [ 0.04; 0.04; 0.04 ]
    (Supervisor.backoff_sequence ~base:0.05 ~max:0.04 3);
  Alcotest.(check (list (float 1e-12)))
    "empty prefix" []
    (Supervisor.backoff_sequence ~base:0.01 ~max:1.0 0)

let test_backoff_resets_on_fresh_pong () =
  (* Drive the supervisor's escalation directly: three kill/EOF cycles
     must sleep exactly the pinned sequence, and the first pong from a
     fresh replacement must reset the delay to base. *)
  let echo_child ~id:_ chan =
    let rec loop () =
      match Transport.Socket.recv chan with
      | kind, payload ->
          Transport.Socket.send chan ~kind payload;
          loop ()
      | exception Transport.Closed -> ()
    in
    loop ()
  in
  let fabric = Transport.Proc.fork ~n:1 ~child:echo_child in
  Fun.protect
    ~finally:(fun () -> Transport.Proc.shutdown ~grace:2.0 fabric)
    (fun () ->
      let base = 0.01 and max_s = 0.04 in
      let sup =
        Supervisor.create ~fabric ~serve:echo_child ~backoff_base:base
          ~backoff_max:max_s ()
      in
      Alcotest.(check (float 1e-12)) "starts at base" base
        (Supervisor.backoff_s sup 0);
      let slept = ref [] in
      for _cycle = 1 to 3 do
        Transport.Proc.kill fabric 0;
        (* The kill marks nothing: the parent learns of the death from
           the EOF, exactly like an external crash. *)
        let rec await_eof attempts =
          if attempts = 0 then Alcotest.fail "EOF never surfaced"
          else
            match Transport.Proc.recv_any fabric ~timeout:1.0 with
            | `Eof 0 -> ()
            | _ -> await_eof (attempts - 1)
        in
        await_eof 100;
        let now = Clock.monotonic_ns () in
        Supervisor.note_eof sup 0 ~now;
        (match Supervisor.respawn_due_at sup 0 with
        | None -> Alcotest.fail "no respawn scheduled"
        | Some at ->
            slept := (float_of_int (at - now) /. 1e9) :: !slept;
            (* Fast-forward past the deadline instead of sleeping. *)
            Supervisor.tick sup ~now:(at + 1));
        check_bool "respawned" true (Supervisor.alive sup 0)
      done;
      Alcotest.(check (list (float 1e-9)))
        "note_eof slept exactly the pinned sequence"
        (Supervisor.backoff_sequence ~base ~max:max_s 3)
        (List.rev !slept);
      check_int "three respawns" 3 (Supervisor.respawns sup);
      (* Escalated and clamped... *)
      Alcotest.(check (float 1e-12)) "escalated to max" max_s
        (Supervisor.backoff_s sup 0);
      (* ...until the replacement proves itself with one pong. *)
      check_bool "pong accepted" true
        (Supervisor.note_pong sup 0 ~now:(Clock.monotonic_ns ()));
      Alcotest.(check (float 1e-12)) "first fresh pong resets to base" base
        (Supervisor.backoff_s sup 0))

(* ------------------------------------------------------------------ *)
(* The chaos soak: concurrent clients, a killer SIGKILLing a random
   child every few requests, heartbeat loss in the background, and a
   bounded queue.  Every admitted request must complete byte-identically
   to the clean path or be rejected [Overloaded]; nothing may hang; the
   fabric must end at its configured size.                              *)

let test_chaos_soak () =
  let nodes = 4 in
  let faults = Fault.spec ~seed:42 ~heartbeat_loss:0.1 () in
  let cfg =
    { Service.default_config with nodes; cores_per_node = 1;
      queue_bound = 4; heartbeat_interval = 0.02; miss_threshold = 3;
      respawn_backoff = 0.005; respawn_backoff_max = 0.1;
      request_timeout = 0.05; faults = Some faults }
  in
  with_service ~cfg ~work:double_inc (fun t ->
      Stats.reset ();
      let clients = 6 and per_client = 8 and kill_every = 5 in
      let completed = Atomic.make 0 in
      let shed = Atomic.make 0 in
      let wrong = Atomic.make 0 in
      let errors = Atomic.make 0 in
      (* Seeded killer: victims are a deterministic sequence; the
         trigger is every [kill_every]-th admitted request. *)
      let kill_rng = Rng.create 1337 in
      let kill_lock = Mutex.create () in
      let maybe_kill () =
        if Atomic.fetch_and_add completed 1 mod kill_every = kill_every - 1 then begin
          Mutex.lock kill_lock;
          let victim = Rng.int kill_rng nodes in
          let pid = (Service.node_pids t).(victim) in
          Mutex.unlock kill_lock;
          try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()
        end
      in
      let client c () =
        for r = 0 to per_client - 1 do
          let req = request ~slices:nodes ~base:((c * 100000) + (r * 1000)) in
          (match Service.submit t req with
          | Ok results ->
              if not (payloads_equal (expected req) results) then
                Atomic.incr wrong
          | Error Service.Overloaded -> Atomic.incr shed
          | Error _ -> Atomic.incr errors);
          maybe_kill ()
        done
      in
      let threads = List.init clients (fun c -> Thread.create (client c) ()) in
      List.iter Thread.join threads;
      (* Nothing hung (we got here), nothing was wrong, nothing failed
         in any way other than being shed. *)
      check_int "no wrong results" 0 (Atomic.get wrong);
      check_int "no hard failures" 0 (Atomic.get errors);
      check_int "every request accounted" (clients * per_client)
        (Atomic.get completed);
      (* The fabric converges back to its configured size. *)
      await
        (fun () -> List.length (Service.live_nodes t) = nodes)
        "fabric never converged back to configured node count";
      (* The supervision path really fired. *)
      check_bool "respawns nonzero" true (Service.respawns t >= 1);
      let s = Stats.snapshot () in
      check_bool "respawn counter" true (s.Stats.respawns >= 1);
      Printf.printf
        "soak: %d requests, %d shed, %d respawns, %d heartbeat misses\n%!"
        (Atomic.get completed) (Atomic.get shed) (Service.respawns t)
        (Service.heartbeat_misses t))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "service"
    [
      ( "clean",
        [
          Alcotest.test_case "basic roundtrip" `Quick test_basic_roundtrip;
          Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
        ] );
      ( "admission",
        [
          Alcotest.test_case "overload sheds" `Quick test_overload_sheds;
          Alcotest.test_case "drain refuses" `Quick test_drain_refuses;
        ] );
      ( "deadlines",
        [ Alcotest.test_case "deadline expires" `Quick test_deadline_expires ] );
      ( "supervision",
        [
          Alcotest.test_case "kill/respawn converges" `Quick
            test_kill_respawn_converges;
          Alcotest.test_case "heartbeat loss detected" `Quick
            test_heartbeat_loss_detected;
          Alcotest.test_case "crash-on-respawn backoff" `Quick
            test_crash_on_respawn_backoff;
          Alcotest.test_case "backoff sequence pinned" `Quick
            test_backoff_sequence;
          Alcotest.test_case "backoff resets on fresh pong" `Quick
            test_backoff_resets_on_fresh_pong;
        ] );
      ("chaos", [ Alcotest.test_case "soak" `Slow test_chaos_soak ]);
    ]
