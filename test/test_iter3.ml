(* Tests for 3-D grids and iterators: slab decomposition, build/sum on
   all execution paths, and the gather-formulated cutcp. *)

open Triolet
module Cluster = Triolet_runtime.Cluster
module Stats = Triolet_runtime.Stats

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen prop)

let () = Triolet_runtime.Pool.set_default_width 2

let () =
  Exec.set_ambient (Exec.make ~nodes:(3) ~cores_per_node:(2) ())

let with_hint3 h it =
  match h with
  | Iter.Sequential -> Iter3.sequential it
  | Iter.Local -> Iter3.localpar it
  | Iter.Distributed -> Iter3.par it

let each_hint f =
  List.iter
    (fun (name, h) -> f name h)
    [ ("seq", Iter.Sequential); ("localpar", Iter.Local);
      ("par", Iter.Distributed) ]

(* ------------------------------------------------------------------ *)
(* Grid3                                                               *)

let test_grid3_get_set () =
  let g = Grid3.create 3 4 5 in
  check_int "points" 60 (Grid3.points g);
  Grid3.set g 2 3 4 7.5;
  check_float "get" 7.5 (Grid3.get g 2 3 4);
  Alcotest.check_raises "oob" (Invalid_argument "Grid3.get") (fun () ->
      ignore (Grid3.get g 3 0 0))

let test_grid3_linear_layout () =
  let g = Grid3.create 4 3 2 in
  (* x fastest, then y, then z *)
  check_int "origin" 0 (Grid3.linear g 0 0 0);
  check_int "x" 1 (Grid3.linear g 1 0 0);
  check_int "y" 4 (Grid3.linear g 0 1 0);
  check_int "z" 12 (Grid3.linear g 0 0 1)

let test_grid3_slab_roundtrip () =
  let g = Grid3.init 3 3 6 (fun x y z -> float_of_int ((100 * z) + (10 * y) + x)) in
  let slab = Grid3.copy_slab g 2 3 in
  let _, _, nz = Grid3.dims slab in
  check_int "slab depth" 3 nz;
  check_float "slab content" (Grid3.get g 1 2 3) (Grid3.get slab 1 2 1);
  let dst = Grid3.create 3 3 6 in
  Grid3.blit_slab ~src:slab ~dst ~z0:2;
  check_float "blitted back" (Grid3.get g 2 1 4) (Grid3.get dst 2 1 4);
  check_float "outside zero" 0.0 (Grid3.get dst 0 0 0)

let test_grid3_add_total () =
  let a = Grid3.init 2 2 2 (fun x y z -> float_of_int (x + y + z)) in
  let b = Grid3.init 2 2 2 (fun _ _ _ -> 1.0) in
  let s = Grid3.add a b in
  check_float "sum cell" (Grid3.get a 1 1 1 +. 1.0) (Grid3.get s 1 1 1);
  check_float "total" (Grid3.total a +. 8.0) (Grid3.total s);
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Grid3.add")
    (fun () -> ignore (Grid3.add a (Grid3.create 1 2 2)))

(* ------------------------------------------------------------------ *)
(* Iter3                                                               *)

let test_iter3_build_identity () =
  let g = Grid3.init 4 3 5 (fun x y z -> float_of_int ((z * 100) + (y * 10) + x)) in
  each_hint (fun name h ->
      let rebuilt = Iter3.build (with_hint3 h (Iter3.of_grid g)) in
      Alcotest.(check bool) (name ^ " identity") true
        (Grid3.equal_eps ~eps:0.0 g rebuilt))

let test_iter3_init_distributed () =
  (* init-based iterators are distributable: the slab payload carries
     bounds and the function travels as a closure. *)
  let f x y z = float_of_int ((x * y) + z) in
  each_hint (fun name h ->
      let built = Iter3.build (with_hint3 h (Iter3.init ~nx:5 ~ny:4 ~nz:7 f)) in
      Alcotest.(check bool) (name ^ " init build") true
        (Grid3.equal_eps ~eps:0.0 (Grid3.init 5 4 7 f) built))

let test_iter3_sum_all_hints () =
  let g = Grid3.init 3 3 9 (fun x y z -> float_of_int (x + y + z)) in
  let expected = Grid3.total g in
  each_hint (fun name h ->
      Alcotest.(check (float 1e-9)) ("sum " ^ name) expected
        (Iter3.sum (with_hint3 h (Iter3.of_grid g))))

let test_iter3_map_map2 () =
  let a = Grid3.init 2 3 4 (fun x y z -> float_of_int (x + y + z)) in
  let doubled = Iter3.build (Iter3.map (fun v -> 2.0 *. v) (Iter3.of_grid a)) in
  check_float "map" (2.0 *. Grid3.get a 1 2 3) (Grid3.get doubled 1 2 3);
  let b = Grid3.init 2 3 4 (fun _ _ _ -> 1.0) in
  let s =
    Iter3.build (Iter3.par (Iter3.map2 ( +. ) (Iter3.of_grid a) (Iter3.of_grid b)))
  in
  Alcotest.(check bool) "map2 distributed" true
    (Grid3.equal_eps ~eps:0.0 (Grid3.add a b) s)

let test_iter3_slab_payload_volume () =
  (* Distributing a grid iterator ships each slab exactly once: the
     scatter volume is ~ one grid, plus one grid gathered back. *)
  let g = Grid3.init 8 8 12 (fun x y z -> float_of_int (x * y * z)) in
  Stats.reset ();
  let _, delta =
    Stats.measure (fun () -> Iter3.build (Iter3.par (Iter3.of_grid g)))
  in
  let grid_bytes = 8 * Grid3.points g in
  Alcotest.(check bool) "~2 grids moved" true
    (delta.Stats.bytes_sent >= 2 * grid_bytes
    && delta.Stats.bytes_sent < (2 * grid_bytes) + 2048)

let test_iter3_more_nodes_than_slabs () =
  Exec.with_context (Exec.make ~nodes:(5) ~cores_per_node:(2) ())
    (fun () ->
      let g = Grid3.init 2 2 3 (fun x _ _ -> float_of_int x) in
      Alcotest.(check (float 1e-9)) "tiny grid" (Grid3.total g)
        (Iter3.sum (Iter3.par (Iter3.of_grid g))))

(* ------------------------------------------------------------------ *)
(* Gather cutcp                                                        *)

let small_box seed =
  Triolet_kernels.Dataset.cutcp ~seed ~atoms:25 ~nx:10 ~ny:9 ~nz:8
    ~spacing:0.5 ~cutoff:1.7

let test_cutcp_gather_matches_scatter () =
  let c = small_box 71 in
  let reference = Triolet_kernels.Cutcp.run_c c in
  each_hint (fun name h ->
      let g = Triolet_kernels.Cutcp.run_gather ~hint:(with_hint3 h) c in
      Alcotest.(check bool) (name ^ " gather = scatter") true
        (Triolet_kernels.Cutcp.agrees ~eps:1e-9 reference g))

let prop_cutcp_gather_agreement =
  qtest "cutcp gather = C on random boxes"
    QCheck2.Gen.(pair (int_range 1 20) (int_range 4 9))
    (fun (atoms, nx) ->
      let c =
        Triolet_kernels.Dataset.cutcp ~seed:(atoms + (31 * nx)) ~atoms ~nx
          ~ny:nx ~nz:nx ~spacing:0.5 ~cutoff:1.3
      in
      Triolet_kernels.Cutcp.agrees ~eps:1e-9
        (Triolet_kernels.Cutcp.run_c c)
        (Triolet_kernels.Cutcp.run_gather c))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let prop_grid3_slabs_glue =
  qtest "slabs glue back to the grid"
    QCheck2.Gen.(pair (int_range 1 10) (int_range 1 4))
    (fun (nz, parts) ->
      let g = Grid3.init 3 2 nz (fun x y z -> float_of_int ((z * 10) + (y * 3) + x)) in
      let out = Grid3.create 3 2 nz in
      Array.iter
        (fun (z0, n) -> Grid3.blit_slab ~src:(Grid3.copy_slab g z0 n) ~dst:out ~z0)
        (Triolet_runtime.Partition.blocks ~parts nz);
      Grid3.equal_eps ~eps:0.0 g out)

let prop_iter3_sum_matches_total =
  qtest "Iter3.sum = Grid3.total"
    QCheck2.Gen.(triple (int_range 1 6) (int_range 1 6) (int_range 1 8))
    (fun (nx, ny, nz) ->
      let g = Grid3.init nx ny nz (fun x y z -> float_of_int ((x * 7) + (y * 3) + z)) in
      Float.abs (Iter3.sum (Iter3.par (Iter3.of_grid g)) -. Grid3.total g)
      < 1e-9)

let () =
  Alcotest.run "iter3"
    [
      ( "grid3",
        [
          Alcotest.test_case "get/set" `Quick test_grid3_get_set;
          Alcotest.test_case "linear layout" `Quick test_grid3_linear_layout;
          Alcotest.test_case "slab roundtrip" `Quick test_grid3_slab_roundtrip;
          Alcotest.test_case "add/total" `Quick test_grid3_add_total;
          prop_grid3_slabs_glue;
        ] );
      ( "iter3",
        [
          Alcotest.test_case "build identity" `Quick test_iter3_build_identity;
          Alcotest.test_case "init distributed" `Quick
            test_iter3_init_distributed;
          Alcotest.test_case "sum" `Quick test_iter3_sum_all_hints;
          Alcotest.test_case "map/map2" `Quick test_iter3_map_map2;
          Alcotest.test_case "slab payload volume" `Quick
            test_iter3_slab_payload_volume;
          Alcotest.test_case "more nodes than slabs" `Quick
            test_iter3_more_nodes_than_slabs;
          prop_iter3_sum_matches_total;
        ] );
      ( "cutcp-gather",
        [
          Alcotest.test_case "gather = scatter" `Quick
            test_cutcp_gather_matches_scatter;
          prop_cutcp_gather_agreement;
        ] );
    ]
