(* Transport layer tests: the process fabric and both frame transports.

   ORDER MATTERS.  The process backend forks, and OCaml forbids [fork]
   once any domain has ever been spawned, so every fork-dependent test
   runs in the first suites — before the conformance tests, which spawn
   receiver domains.  The final suite checks the fail-fast guard the
   other way around: once domains exist, the process backend must raise
   a clear [Failure] instead of a cryptic fork error. *)

open Triolet_runtime
module Payload = Triolet_base.Payload
module Codec = Triolet_base.Codec

(* Keep the parent single-domain so forking stays possible: the default
   pool must never spawn a worker domain in this process. *)
let () = Pool.set_default_width 1

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Process fabric (fork-dependent: must run before any domain exists)   *)

let reverse_bytes b =
  let n = Bytes.length b in
  Bytes.init n (fun i -> Bytes.get b (n - 1 - i))

let test_fabric_echo () =
  let fabric =
    Transport.Proc.fork ~n:2 ~child:(fun ~id:_ chan ->
        let rec loop () =
          match Transport.Socket.recv chan with
          | kind, payload ->
              Transport.Socket.send chan ~kind (reverse_bytes payload);
              loop ()
          | exception Transport.Closed -> ()
        in
        loop ())
  in
  Fun.protect
    ~finally:(fun () -> Transport.Proc.shutdown ~grace:2.0 fabric)
    (fun () ->
      (* One frame per child, echoed reversed, read back per child. *)
      Array.iteri
        (fun i payload ->
          let chan = (Transport.Proc.node fabric i).Transport.Proc.chan in
          Transport.Socket.send chan (Bytes.of_string payload);
          let kind, reply = Transport.Socket.recv chan in
          check_bool "data kind" true (kind = Transport.Data);
          Alcotest.(check string)
            "reversed"
            (Bytes.to_string (reverse_bytes (Bytes.of_string payload)))
            (Bytes.to_string reply))
        [| "hello node zero"; "frames stay whole" |];
      (* Err frames keep their kind across the wire. *)
      let chan = (Transport.Proc.node fabric 0).Transport.Proc.chan in
      Transport.Socket.send chan ~kind:Transport.Err (Bytes.of_string "boom");
      let kind, reply = Transport.Socket.recv chan in
      check_bool "err kind" true (kind = Transport.Err);
      Alcotest.(check string) "err payload" "moob" (Bytes.to_string reply))

(* An echo serve loop shared by the teardown/respawn regressions. *)
let echo_child ~id:_ chan =
  let rec loop () =
    match Transport.Socket.recv chan with
    | kind, payload ->
        Transport.Socket.send chan ~kind (reverse_bytes payload);
        loop ()
    | exception Transport.Closed -> ()
  in
  loop ()

(* Regression (satellite of the service PR): shutdown must be
   idempotent — calling it twice, e.g. once from a normal path and once
   from a [~finally], used to double-close fds and double-wait pids. *)
let test_double_shutdown () =
  let fabric = Transport.Proc.fork ~n:2 ~child:echo_child in
  Transport.Proc.shutdown ~grace:2.0 fabric;
  (* Second call must be a silent no-op, never an exception. *)
  Transport.Proc.shutdown ~grace:2.0 fabric;
  check_int "no nodes alive" 0 (List.length (Transport.Proc.alive_ids fabric))

(* Shutdown racing a child dying on its own: the child is SIGKILLed
   (possibly mid-frame) right before teardown; shutdown must absorb the
   EPIPE/ECHILD fallout instead of raising out of a [~finally]. *)
let test_shutdown_with_dying_child () =
  let fabric = Transport.Proc.fork ~n:3 ~child:echo_child in
  (* Kill one child and immediately shut down, without waiting for the
     EOF to surface: teardown and death race. *)
  Transport.Proc.kill fabric 1;
  Transport.Proc.shutdown ~grace:2.0 fabric;
  Transport.Proc.shutdown ~grace:2.0 fabric;
  check_int "fabric drained" 0 (List.length (Transport.Proc.alive_ids fabric))

(* Kill + respawn: the replacement child runs the same closure over a
   fresh channel and pid, and sibling channels keep working throughout. *)
let test_kill_respawn_echo () =
  let fabric = Transport.Proc.fork ~n:2 ~child:echo_child in
  Fun.protect
    ~finally:(fun () -> Transport.Proc.shutdown ~grace:2.0 fabric)
    (fun () ->
      let old_pid = Transport.Proc.pid fabric 0 in
      Transport.Proc.kill fabric 0;
      (* Observe the EOF so the node is marked dead. *)
      let rec await_eof () =
        match Transport.Proc.recv_any fabric ~timeout:1.0 with
        | `Eof 0 -> ()
        | `Eof _ | `Msg _ | `Wake -> await_eof ()
        | `Timeout | `No_nodes -> Alcotest.fail "no EOF after SIGKILL"
      in
      await_eof ();
      check_bool "node 0 dead" false (Transport.Proc.is_alive fabric 0);
      Transport.Proc.respawn fabric 0 ~child:echo_child;
      check_bool "node 0 alive again" true (Transport.Proc.is_alive fabric 0);
      check_bool "fresh incarnation" true
        (Transport.Proc.pid fabric 0 <> old_pid);
      (* The replacement serves... *)
      let chan0 = (Transport.Proc.node fabric 0).Transport.Proc.chan in
      Transport.Socket.send chan0 (Bytes.of_string "abc");
      let _, r0 = Transport.Socket.recv chan0 in
      Alcotest.(check string) "respawned echoes" "cba" (Bytes.to_string r0);
      (* ...and the sibling was never disturbed. *)
      let chan1 = (Transport.Proc.node fabric 1).Transport.Proc.chan in
      Transport.Socket.send chan1 (Bytes.of_string "xyz");
      let _, r1 = Transport.Socket.recv chan1 in
      Alcotest.(check string) "sibling still serves" "zyx" (Bytes.to_string r1))

(* Ping/Pong kinds cross the wire like any frame. *)
let test_ping_pong_frames () =
  let fabric = Transport.Proc.fork ~n:1 ~child:echo_child in
  Fun.protect
    ~finally:(fun () -> Transport.Proc.shutdown ~grace:2.0 fabric)
    (fun () ->
      let chan = (Transport.Proc.node fabric 0).Transport.Proc.chan in
      Transport.Socket.send chan ~kind:Transport.Ping (Bytes.of_string "hb");
      let kind, payload = Transport.Socket.recv chan in
      check_bool "ping kind preserved" true (kind = Transport.Ping);
      Alcotest.(check string) "payload" "bh" (Bytes.to_string payload))

(* ------------------------------------------------------------------ *)
(* Cross-backend equivalence: identical results and identical payload
   accounting on the clean path.                                        *)

let run_sum topo =
  let xs = Float.Array.init 999 (fun i -> float_of_int i /. 7.0) in
  Cluster.run_topology topo
    ~scatter:(fun node ->
      let blocks = Partition.blocks ~parts:topo.Cluster.nodes 999 in
      let off, n = blocks.(node) in
      [ Payload.Floats (Float.Array.sub xs off n) ])
    ~work:(fun ~node:_ ~pool:_ payload ->
      match payload with
      | [ Payload.Floats a ] ->
          let acc = ref 0.0 in
          Float.Array.iter (fun x -> acc := !acc +. x) a;
          !acc
      | _ -> Alcotest.fail "bad payload")
    ~result_codec:Codec.float
    ~merge:( +. ) ~init:0.0

let test_clean_parity () =
  let mk backend =
    { Cluster.nodes = 3; cores_per_node = 2; backend }
  in
  let sum_in, rep_in = run_sum (mk Cluster.Inprocess) in
  let sum_pr, rep_pr = run_sum (mk Cluster.Process) in
  Alcotest.(check (float 1e-9)) "same sum" sum_in sum_pr;
  check_int "scatter bytes" rep_in.Cluster.scatter_bytes
    rep_pr.Cluster.scatter_bytes;
  check_int "gather bytes" rep_in.Cluster.gather_bytes
    rep_pr.Cluster.gather_bytes;
  check_int "scatter messages" rep_in.Cluster.scatter_messages
    rep_pr.Cluster.scatter_messages;
  check_int "gather messages" rep_in.Cluster.gather_messages
    rep_pr.Cluster.gather_messages;
  check_int "max message" rep_in.Cluster.max_message_bytes
    rep_pr.Cluster.max_message_bytes

let test_merge_order_process () =
  let topo = { Cluster.nodes = 3; cores_per_node = 1;
               backend = Cluster.Process } in
  let order, _ =
    Cluster.run_topology topo
      ~scatter:(fun node -> [ Payload.Ints [| node |] ])
      ~work:(fun ~node:_ ~pool:_ payload ->
        match payload with [ Payload.Ints a ] -> a.(0) | _ -> -1)
      ~result_codec:Codec.int
      ~merge:(fun acc v -> acc @ [ v ])
      ~init:[]
  in
  Alcotest.(check (list int)) "worker order, not arrival order"
    [ 0; 1; 2 ] order

(* The four kernels produce identical results — and identical message
   and byte traffic — whichever transport carries the bytes. *)
let test_kernels_cross_backend () =
  let module D = Triolet_kernels.Dataset in
  let ctx backend =
    Triolet.Exec.make ~nodes:3 ~cores_per_node:2 ~backend ()
  in
  let ctx_in = ctx Cluster.Inprocess and ctx_pr = ctx Cluster.Process in
  let measured f =
    Stats.reset ();
    let r, d = Stats.measure f in
    (r, d.Stats.messages, d.Stats.bytes_sent)
  in
  let check_traffic name (m_in, b_in) (m_pr, b_pr) =
    check_int (name ^ " messages") m_in m_pr;
    check_int (name ^ " bytes") b_in b_pr
  in
  (let d = D.mriq ~seed:11 ~samples:48 ~voxels:96 in
   let r_in, m_in, b_in =
     measured (fun () -> Triolet_kernels.Mriq.run_triolet ~ctx:ctx_in d)
   in
   let r_pr, m_pr, b_pr =
     measured (fun () -> Triolet_kernels.Mriq.run_triolet ~ctx:ctx_pr d)
   in
   check_bool "mri-q agrees" true
     (Triolet_kernels.Mriq.agrees ~eps:0.0 r_in r_pr);
   check_traffic "mri-q" (m_in, b_in) (m_pr, b_pr));
  (let a, b = D.sgemm_matrices ~seed:21 ~m:18 ~k:12 ~n:14 in
   let r_in, m_in, b_in =
     measured (fun () -> Triolet_kernels.Sgemm.run_triolet ~ctx:ctx_in a b)
   in
   let r_pr, m_pr, b_pr =
     measured (fun () -> Triolet_kernels.Sgemm.run_triolet ~ctx:ctx_pr a b)
   in
   check_bool "sgemm agrees" true
     (Triolet_kernels.Sgemm.agrees ~eps:0.0 r_in r_pr);
   check_traffic "sgemm" (m_in, b_in) (m_pr, b_pr));
  (let d = D.tpacf ~seed:31 ~points:32 ~random_sets:3 in
   let r_in, m_in, b_in =
     measured (fun () ->
         Triolet_kernels.Tpacf.run_triolet ~ctx:ctx_in ~bins:12 d)
   in
   let r_pr, m_pr, b_pr =
     measured (fun () ->
         Triolet_kernels.Tpacf.run_triolet ~ctx:ctx_pr ~bins:12 d)
   in
   check_bool "tpacf agrees" true (Triolet_kernels.Tpacf.agrees r_in r_pr);
   check_traffic "tpacf" (m_in, b_in) (m_pr, b_pr));
  let d =
    D.cutcp ~seed:41 ~atoms:32 ~nx:8 ~ny:8 ~nz:8 ~spacing:0.5 ~cutoff:1.5
  in
  let r_in, m_in, b_in =
    measured (fun () -> Triolet_kernels.Cutcp.run_triolet ~ctx:ctx_in d)
  in
  let r_pr, m_pr, b_pr =
    measured (fun () -> Triolet_kernels.Cutcp.run_triolet ~ctx:ctx_pr d)
  in
  check_bool "cutcp agrees" true
    (Triolet_kernels.Cutcp.agrees ~eps:1e-9 r_in r_pr);
  check_traffic "cutcp" (m_in, b_in) (m_pr, b_pr)

(* ------------------------------------------------------------------ *)
(* Fault path over real processes.                                      *)

(* A child SIGKILLed from outside mid-task is indistinguishable from an
   injected crash: the parent sees EOF, marks the node dead, and
   re-executes its slice on a survivor. *)
let test_external_kill_recovered () =
  let topo = { Cluster.nodes = 3; cores_per_node = 1;
               backend = Cluster.Process } in
  let faults = Fault.spec ~seed:1 ~base_timeout:0.05 ~max_timeout:0.5 () in
  let result, report =
    Cluster.run_topology ~faults topo
      ~scatter:(fun node -> [ Payload.Ints [| node + 1 |] ])
      ~work:(fun ~node ~pool:_ payload ->
        (* Only the process that *is* node 1 dies; the survivor that
           re-executes node 1's slice reports a different [on_node]. *)
        if node = 1 && Cluster.on_node () = Some 1 then
          Unix.kill (Unix.getpid ()) Sys.sigkill;
        match payload with [ Payload.Ints a ] -> a.(0) * 10 | _ -> -1)
      ~result_codec:Codec.int
      ~merge:( + ) ~init:0
  in
  check_int "all three slices" 60 result;
  check_int "one crash survived" 1 report.Cluster.crashed_nodes;
  check_bool "at least one retry" true (report.Cluster.retries >= 1)

(* Link noise (drops, duplicates, corruption, delays) injected over the
   socket transport: corrupt frames are rejected by the checksummed
   envelope, everything is recovered, and the merged result is exact. *)
let test_noisy_faults_recovered () =
  let topo = { Cluster.nodes = 3; cores_per_node = 1;
               backend = Cluster.Process } in
  let faults =
    Fault.spec ~seed:5 ~drop:0.4 ~duplicate:0.4 ~corrupt:0.4 ~delay:0.4
      ~base_timeout:0.1 ~max_timeout:1.0 ()
  in
  let result, report =
    Cluster.run_topology ~faults topo
      ~scatter:(fun node -> [ Payload.Ints [| node |] ])
      ~work:(fun ~node:_ ~pool:_ payload ->
        match payload with [ Payload.Ints a ] -> a.(0) + 100 | _ -> -1)
      ~result_codec:Codec.int
      ~merge:( + ) ~init:0
  in
  check_int "exact result under noise" 303 result;
  check_bool "faults fired" true (report.Cluster.faults_injected > 0)

(* ------------------------------------------------------------------ *)
(* Backend naming and legacy-config immunity.                           *)

let test_backend_strings () =
  List.iter
    (fun b ->
      Alcotest.(check (option string))
        "round-trip" (Some (Cluster.backend_to_string b))
        (Option.map Cluster.backend_to_string
           (Cluster.backend_of_string (Cluster.backend_to_string b))))
    [ Cluster.Inprocess; Cluster.Flat; Cluster.Process ];
  check_bool "unknown rejected" true
    (Cluster.backend_of_string "carrier-pigeon" = None)

(* Legacy [Cluster.run]/[config] entry points must stay deterministic:
   they never select the process backend, whatever the environment
   says. *)
let test_legacy_config_never_process () =
  Unix.putenv "TRIOLET_BACKEND" "process";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "TRIOLET_BACKEND" "")
    (fun () ->
      let topo =
        Cluster.topology_of_config
          { Cluster.nodes = 2; cores_per_node = 2; flat = false }
      in
      check_bool "inprocess" true (topo.Cluster.backend = Cluster.Inprocess);
      let topo_flat =
        Cluster.topology_of_config
          { Cluster.nodes = 2; cores_per_node = 2; flat = true }
      in
      check_bool "flat" true (topo_flat.Cluster.backend = Cluster.Flat))

(* ------------------------------------------------------------------ *)
(* Conformance: both transports behind the same module interface.
   These spawn receiver domains, so they run after every fork test.     *)

module Conformance (T : Transport.S) = struct
  let test_echo () =
    let a, b = T.connect () in
    T.send a (Bytes.of_string "ping");
    let kind, payload = T.recv b in
    check_bool "data kind" true (kind = Transport.Data);
    Alcotest.(check string) "payload" "ping" (Bytes.to_string payload);
    T.send b (Bytes.of_string "pong");
    let _, reply = T.recv a in
    Alcotest.(check string) "reply" "pong" (Bytes.to_string reply);
    (* Empty frames are legal and keep their boundary. *)
    T.send a Bytes.empty;
    let kind, payload = T.recv b in
    check_bool "empty frame kind" true (kind = Transport.Data);
    check_int "empty frame" 0 (Bytes.length payload);
    T.close a;
    T.close b

  let test_order_and_kinds () =
    let a, b = T.connect () in
    T.send a ~kind:Transport.Data (Bytes.of_string "1");
    T.send a ~kind:Transport.Err (Bytes.of_string "2");
    T.send a ~kind:Transport.Nack (Bytes.of_string "3");
    let frames = List.init 3 (fun _ -> T.recv b) in
    Alcotest.(check (list string))
      "fifo order" [ "1"; "2"; "3" ]
      (List.map (fun (_, p) -> Bytes.to_string p) frames);
    check_bool "kinds preserved" true
      (List.map fst frames
      = [ Transport.Data; Transport.Err; Transport.Nack ]);
    T.close a;
    T.close b

  (* A 1 MiB frame arrives whole and intact — larger than any socket
     buffer, so framing must reassemble partial reads.  The receiver
     runs in its own domain so a blocking transport cannot deadlock
     against the sender. *)
  let test_large_payload () =
    let n = 1 lsl 20 in
    let payload = Bytes.init n (fun i -> Char.chr (i * 131 land 0xff)) in
    let a, b = T.connect () in
    let receiver = Domain.spawn (fun () -> T.recv b) in
    T.send a payload;
    let kind, got = Domain.join receiver in
    check_bool "data kind" true (kind = Transport.Data);
    check_int "length" n (Bytes.length got);
    check_bool "intact" true (Bytes.equal payload got);
    T.close a;
    T.close b

  let test_timeout () =
    let a, b = T.connect () in
    (match T.recv_timeout b 0.02 with
    | `Timeout -> ()
    | `Msg _ -> Alcotest.fail "phantom frame"
    | `Closed -> Alcotest.fail "phantom close");
    T.close a;
    T.close b

  (* The checksummed envelope rides on top of any transport: a frame
     corrupted in flight is rejected on decode, never decoded as
     garbage; the intact frame around it still decodes exactly. *)
  let test_checksummed_corruption_rejected () =
    let codec = Codec.checksummed Codec.float in
    let a, b = T.connect () in
    let good = Codec.to_bytes codec 216.45 in
    let evil = Bytes.copy good in
    let i = Bytes.length evil - 3 in
    Bytes.set evil i (Char.chr (Char.code (Bytes.get evil i) lxor 0x5a));
    T.send a evil;
    T.send a good;
    let _, frame1 = T.recv b in
    check_bool "corrupt frame rejected" true
      (match Codec.of_bytes codec frame1 with
      | _ -> false
      | exception Codec.Checksum_mismatch _ -> true
      | exception Codec.Trailing_bytes _ -> true);
    let _, frame2 = T.recv b in
    Alcotest.(check (float 0.0))
      "intact frame decodes" 216.45
      (Codec.of_bytes codec frame2);
    T.close a;
    T.close b

  (* Closing one endpoint wakes a peer blocked on the other. *)
  let test_close_wakes_blocked_peer () =
    let a, b = T.connect () in
    let blocked =
      Domain.spawn (fun () ->
          match T.recv b with
          | _ -> `Got_frame
          | exception Transport.Closed -> `Closed)
    in
    Unix.sleepf 0.02;
    T.close a;
    check_bool "woke with Closed" true (Domain.join blocked = `Closed)

  let tests =
    [
      Alcotest.test_case (T.name ^ " echo") `Quick test_echo;
      Alcotest.test_case (T.name ^ " order and kinds") `Quick
        test_order_and_kinds;
      Alcotest.test_case (T.name ^ " 1MiB frame") `Quick test_large_payload;
      Alcotest.test_case (T.name ^ " timeout") `Quick test_timeout;
      Alcotest.test_case (T.name ^ " corruption rejected") `Quick
        test_checksummed_corruption_rejected;
      Alcotest.test_case (T.name ^ " close wakes peer") `Quick
        test_close_wakes_blocked_peer;
    ]
end

module Mailbox_conf = Conformance (Transport.Mailbox_chan)
module Socket_conf = Conformance (Transport.Socket_s)

(* ------------------------------------------------------------------ *)
(* Fail-fast guard: by this point the conformance tests have spawned
   domains, so the process backend must refuse to fork with a clear
   explanation rather than die inside [Unix.fork].                      *)

let test_process_after_domains_fails () =
  (* Spawn (and immediately retire) a real worker pool: the fork ban is
     permanent, so even a shut-down pool poisons the process backend. *)
  let p = Pool.create ~workers:2 () in
  Pool.shutdown p;
  check_bool "domains were spawned" true (Pool.domains_ever_spawned ());
  match
    Cluster.run_topology
      { Cluster.nodes = 2; cores_per_node = 1; backend = Cluster.Process }
      ~scatter:(fun _ -> Payload.empty)
      ~work:(fun ~node:_ ~pool:_ _ -> ())
      ~result_codec:Codec.unit
      ~merge:(fun () () -> ())
      ~init:()
  with
  | _ -> Alcotest.fail "process backend forked after domains were spawned"
  | exception Failure msg ->
      check_bool "explains the fork restriction" true
        (String.length msg > 0
        && String.sub msg 0 7 = "Cluster")

let () =
  Alcotest.run "transport"
    [
      (* fork-dependent suites first: see the header comment *)
      ( "process-fabric",
        [
          Alcotest.test_case "echo children" `Quick test_fabric_echo;
          Alcotest.test_case "double shutdown is idempotent" `Quick
            test_double_shutdown;
          Alcotest.test_case "shutdown races dying child" `Quick
            test_shutdown_with_dying_child;
          Alcotest.test_case "kill and respawn" `Quick test_kill_respawn_echo;
          Alcotest.test_case "ping/pong frames" `Quick test_ping_pong_frames;
        ] );
      ( "cross-backend",
        [
          Alcotest.test_case "clean accounting parity" `Quick
            test_clean_parity;
          Alcotest.test_case "merge order over processes" `Quick
            test_merge_order_process;
          Alcotest.test_case "kernels identical" `Slow
            test_kernels_cross_backend;
        ] );
      ( "process-faults",
        [
          Alcotest.test_case "external kill recovered" `Quick
            test_external_kill_recovered;
          Alcotest.test_case "noisy links recovered" `Quick
            test_noisy_faults_recovered;
        ] );
      ( "backend-api",
        [
          Alcotest.test_case "backend strings" `Quick test_backend_strings;
          Alcotest.test_case "legacy config never process" `Quick
            test_legacy_config_never_process;
        ] );
      ("conformance-mailbox", Mailbox_conf.tests);
      ("conformance-socket", Socket_conf.tests);
      ( "fork-guard",
        [
          Alcotest.test_case "process after domains fails" `Quick
            test_process_after_domains_fails;
        ] );
    ]
