(* Tests for matrices and 2-D iterators: rows/outer_product block
   decomposition (the paper's two-line sgemm), build on all execution
   paths, and transposition. *)

open Triolet
module Cluster = Triolet_runtime.Cluster
module Stats = Triolet_runtime.Stats

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen prop)

let () = Triolet_runtime.Pool.set_default_width 2

let () =
  Exec.set_ambient (Exec.make ~nodes:(4) ~cores_per_node:(2) ())

let mk rows cols f = Matrix.init rows cols f

(* ------------------------------------------------------------------ *)
(* Matrix                                                              *)

let test_matrix_get_set () =
  let m = Matrix.create 2 3 in
  Matrix.set m 1 2 5.0;
  check_float "set/get" 5.0 (Matrix.get m 1 2);
  check_float "zero init" 0.0 (Matrix.get m 0 0);
  Alcotest.check_raises "oob" (Invalid_argument "Matrix.get") (fun () ->
      ignore (Matrix.get m 2 0))

let test_matrix_row_views () =
  let m = mk 3 4 (fun i j -> float_of_int ((10 * i) + j)) in
  let r = Matrix.row m 1 in
  check_int "len" 4 (Matrix.view_len r);
  check_float "elem" 12.0 (Matrix.view_get r 2);
  Alcotest.check_raises "view oob" (Invalid_argument "Matrix.view_get")
    (fun () -> ignore (Matrix.view_get r 4))

let test_matrix_view_dot () =
  let m = mk 2 3 (fun i j -> float_of_int (i + j + 1)) in
  (* row0 = [1;2;3], row1 = [2;3;4] -> dot = 2+6+12 = 20 *)
  check_float "dot" 20.0 (Matrix.view_dot (Matrix.row m 0) (Matrix.row m 1))

let test_matrix_copy_rows_blit () =
  let m = mk 4 3 (fun i j -> float_of_int ((i * 3) + j)) in
  let sub = Matrix.copy_rows m 1 2 in
  check_int "rows" 2 (Matrix.rows sub);
  check_float "content" (Matrix.get m 2 1) (Matrix.get sub 1 1);
  let dst = Matrix.create 4 4 in
  Matrix.blit_block ~src:sub ~dst ~r0:1 ~c0:1;
  check_float "blitted" (Matrix.get m 1 0) (Matrix.get dst 1 1);
  check_float "outside untouched" 0.0 (Matrix.get dst 0 0)

let test_matrix_transpose () =
  let m = mk 3 5 (fun i j -> float_of_int ((i * 5) + j)) in
  let t = Matrix.transpose m in
  check_int "rows" 5 (Matrix.rows t);
  check_int "cols" 3 (Matrix.cols t);
  for i = 0 to 2 do
    for j = 0 to 4 do
      check_float "transposed" (Matrix.get m i j) (Matrix.get t j i)
    done
  done

let test_matrix_transpose_par_matches () =
  let rng = Triolet_base.Rng.create 5 in
  let m = Matrix.random rng 17 23 (-1.0) 1.0 in
  let p = Triolet_runtime.Pool.default () in
  Alcotest.(check bool) "par = seq" true
    (Matrix.equal_eps ~eps:0.0 (Matrix.transpose m) (Matrix.transpose_par p m))

let test_matrix_mul_ref () =
  (* 2x2: A = [1 2; 3 4], B = [5 6; 7 8], AB = [19 22; 43 50].
     mul_ref takes B^T. *)
  let a = mk 2 2 (fun i j -> float_of_int ((i * 2) + j + 1)) in
  let b = mk 2 2 (fun i j -> float_of_int ((i * 2) + j + 5)) in
  let c = Matrix.mul_ref ~alpha:1.0 a (Matrix.transpose b) in
  check_float "c00" 19.0 (Matrix.get c 0 0);
  check_float "c01" 22.0 (Matrix.get c 0 1);
  check_float "c10" 43.0 (Matrix.get c 1 0);
  check_float "c11" 50.0 (Matrix.get c 1 1)

(* ------------------------------------------------------------------ *)
(* Iter2                                                               *)

let with_hint2 h it =
  match h with
  | Iter.Sequential -> Iter2.sequential it
  | Iter.Local -> Iter2.localpar it
  | Iter.Distributed -> Iter2.par it

let each_hint2 f =
  List.iter
    (fun (name, h) -> f name h)
    [ ("seq", Iter.Sequential); ("localpar", Iter.Local);
      ("par", Iter.Distributed) ]

let test_build_of_matrix_identity () =
  let m = mk 5 7 (fun i j -> float_of_int ((i * 7) + j)) in
  List.iter
    (fun (name, h) ->
      match name with
      | "par" -> () (* of_matrix has no serializable source *)
      | _ ->
          let rebuilt = Iter2.build (h (Iter2.of_matrix m)) in
          Alcotest.(check bool) (name ^ " identity") true
            (Matrix.equal_eps ~eps:0.0 m rebuilt))
    [ ("seq", Iter2.sequential); ("localpar", Iter2.localpar); ("par", Iter2.par) ]

let test_transpose_iter () =
  let m = mk 3 4 (fun i j -> float_of_int ((10 * i) + j)) in
  let t = Iter2.build (Iter2.localpar (Iter2.transpose_iter m)) in
  Alcotest.(check bool) "matches Matrix.transpose" true
    (Matrix.equal_eps ~eps:0.0 (Matrix.transpose m) t)

(* The paper's two-line sgemm. *)
let sgemm_triolet ?(alpha = 1.0) hint a b =
  let bt = Matrix.transpose b in
  let zipped = Iter2.outer_product (Iter2.rows a) (Iter2.rows bt) in
  Iter2.build (hint (Iter2.map (fun (u, v) -> alpha *. Matrix.view_dot u v) zipped))

let test_sgemm_two_lines_all_hints () =
  let rng = Triolet_base.Rng.create 42 in
  let a = Matrix.random rng 13 9 (-1.0) 1.0 in
  let b = Matrix.random rng 9 11 (-1.0) 1.0 in
  let reference = Matrix.mul_ref ~alpha:1.0 a (Matrix.transpose b) in
  each_hint2 (fun name h ->
      let c = sgemm_triolet (with_hint2 h) a b in
      Alcotest.(check bool) (name ^ " matches reference") true
        (Matrix.equal_eps ~eps:1e-9 reference c))

let test_sgemm_alpha () =
  let rng = Triolet_base.Rng.create 1 in
  let a = Matrix.random rng 4 4 0.0 1.0 in
  let b = Matrix.random rng 4 4 0.0 1.0 in
  let c1 = sgemm_triolet ~alpha:1.0 Iter2.sequential a b in
  let c2 = sgemm_triolet ~alpha:2.5 Iter2.par a b in
  let scaled = Matrix.init 4 4 (fun i j -> 2.5 *. Matrix.get c1 i j) in
  Alcotest.(check bool) "alpha scales" true (Matrix.equal_eps ~eps:1e-9 scaled c2)

let test_sgemm_nonsquare_distributed () =
  (* Uneven dimensions across a 4-node (2x2 block) cluster. *)
  let rng = Triolet_base.Rng.create 9 in
  let a = Matrix.random rng 7 5 (-2.0) 2.0 in
  let b = Matrix.random rng 5 3 (-2.0) 2.0 in
  let reference = Matrix.mul_ref ~alpha:1.0 a (Matrix.transpose b) in
  let c = sgemm_triolet Iter2.par a b in
  Alcotest.(check bool) "distributed nonsquare" true
    (Matrix.equal_eps ~eps:1e-9 reference c)

let test_outer_product_block_payload_is_rows_only () =
  (* A 2D block decomposition of outer_product(rows A, rows BT) must
     ship, per node, one row band of A and one of BT — not the whole
     matrices. With a 2x2 grid over an n x n product, each input row
     band is shared by the two blocks in its grid row/column, so the
     scatter volume is 2 copies of A + 2 copies of BT = 4 matrices
     worth, plus 1 output matrix gathered. The naive whole-input scheme
     (both matrices to all 4 nodes) would scatter 8 matrices worth. *)
  let n = 32 in
  let rng = Triolet_base.Rng.create 3 in
  let a = Matrix.random rng n n 0.0 1.0 in
  let b = Matrix.random rng n n 0.0 1.0 in
  Stats.reset ();
  let _, delta = Stats.measure (fun () -> sgemm_triolet Iter2.par a b) in
  let matrix_bytes = 8 * n * n in
  Alcotest.(check bool) "sliced traffic" true
    (delta.Stats.bytes_sent < (6 * matrix_bytes) + 2048);
  Alcotest.(check bool) "at least the slices" true
    (delta.Stats.bytes_sent >= 5 * matrix_bytes)

let test_rows_iterator () =
  let m = mk 4 3 (fun i j -> float_of_int ((i * 3) + j)) in
  let rws = Iter2.rows m in
  check_int "len" 4 (Iter.length rws);
  let sums = Iter.to_list (Iter.map (fun v ->
      let s = ref 0.0 in
      for k = 0 to Matrix.view_len v - 1 do s := !s +. Matrix.view_get v k done;
      !s) rws)
  in
  Alcotest.(check (list (float 0.0))) "row sums" [ 3.0; 12.0; 21.0; 30.0 ] sums

let test_rows_distributed_sum () =
  let m = mk 50 8 (fun i j -> float_of_int (i + j)) in
  let expected = ref 0.0 in
  for i = 0 to 49 do
    for j = 0 to 7 do
      expected := !expected +. float_of_int (i + j)
    done
  done;
  let s =
    Iter.sum
      (Iter.map
         (fun v ->
           let s = ref 0.0 in
           for k = 0 to Matrix.view_len v - 1 do
             s := !s +. Matrix.view_get v k
           done;
           !s)
         (Iter.par (Iter2.rows m)))
  in
  Alcotest.(check (float 1e-6)) "distributed row sum" !expected s

let test_iter2_map_composition () =
  let m = mk 3 3 (fun i j -> float_of_int (i * j)) in
  let doubled =
    Iter2.build (Iter2.map (fun x -> 2.0 *. x) (Iter2.of_matrix m))
  in
  check_float "composed" (2.0 *. Matrix.get m 2 2) (Matrix.get doubled 2 2)

let test_iter2_sum_all_hints () =
  let m = mk 9 7 (fun i j -> float_of_int ((i * 7) + j)) in
  let expected = float_of_int (63 * 62 / 2) in
  (* of_matrix has no serializable source, so par is exercised through
     outer_product in the next test. *)
  Alcotest.(check (float 1e-9)) "sum seq" expected
    (Iter2.sum (Iter2.sequential (Iter2.of_matrix m)));
  Alcotest.(check (float 1e-9)) "sum localpar" expected
    (Iter2.sum (Iter2.localpar (Iter2.of_matrix m)))

let test_iter2_sum_distributed_outer_product () =
  (* Frobenius-like sum over outer_product: sum of all pairwise row
     dots = sum_i sum_j <r_i, r_j> = |sum_i r_i|^2 elementwise. *)
  let m = mk 6 4 (fun i j -> float_of_int (i + j)) in
  let zipped = Iter2.outer_product (Iter2.rows m) (Iter2.rows m) in
  let total =
    Iter2.sum (Iter2.par (Iter2.map (fun (u, v) -> Matrix.view_dot u v) zipped))
  in
  let colsum = Array.init 4 (fun j ->
      let s = ref 0.0 in
      for i = 0 to 5 do s := !s +. Matrix.get m i j done;
      !s)
  in
  let expected = Array.fold_left (fun a c -> a +. (c *. c)) 0.0 colsum in
  Alcotest.(check (float 1e-6)) "pairwise dots" expected total

let test_iter2_map2 () =
  let a = mk 3 3 (fun i j -> float_of_int (i + j)) in
  let b = mk 3 3 (fun i j -> float_of_int (i * j)) in
  let s = Iter2.build (Iter2.map2 ( +. ) (Iter2.of_matrix a) (Iter2.of_matrix b)) in
  check_float "combined" (Matrix.get a 2 1 +. Matrix.get b 2 1) (Matrix.get s 2 1);
  (* intersection of extents *)
  let small = mk 2 5 (fun _ _ -> 1.0) in
  let c = Iter2.map2 ( +. ) (Iter2.of_matrix a) (Iter2.of_matrix small) in
  check_int "rows" 2 (Iter2.row_count c);
  check_int "cols" 3 (Iter2.col_count c)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let gen_dims = QCheck2.Gen.(triple (int_range 1 12) (int_range 1 12) (int_range 1 12))

let prop_sgemm_hint_invariance =
  qtest "sgemm result independent of hint" gen_dims (fun (m, k, n) ->
      let rng = Triolet_base.Rng.create (m + (100 * k) + (10000 * n)) in
      let a = Matrix.random rng m k (-1.0) 1.0 in
      let b = Matrix.random rng k n (-1.0) 1.0 in
      let s = sgemm_triolet Iter2.sequential a b in
      let l = sgemm_triolet Iter2.localpar a b in
      let d = sgemm_triolet Iter2.par a b in
      Matrix.equal_eps ~eps:1e-9 s l && Matrix.equal_eps ~eps:1e-9 s d)

let prop_transpose_involution =
  qtest "transpose . transpose = id"
    QCheck2.Gen.(pair (int_range 1 20) (int_range 1 20))
    (fun (r, c) ->
      let rng = Triolet_base.Rng.create (r + (31 * c)) in
      let m = Matrix.random rng r c (-5.0) 5.0 in
      Matrix.equal_eps ~eps:0.0 m (Matrix.transpose (Matrix.transpose m)))

let prop_rows_ship_roundtrip =
  qtest "rows payload rebuild preserves content"
    QCheck2.Gen.(pair (int_range 1 15) (int_range 1 10))
    (fun (r, c) ->
      let rng = Triolet_base.Rng.create (r * c) in
      let m = Matrix.random rng r c 0.0 1.0 in
      let s1 =
        Iter.sum
          (Iter.map (fun v -> Matrix.view_dot v v) (Iter.par (Iter2.rows m)))
      in
      let s2 =
        Iter.sum
          (Iter.map (fun v -> Matrix.view_dot v v) (Iter2.rows m))
      in
      Float.abs (s1 -. s2) <= 1e-9 *. (1.0 +. Float.abs s2))

let () =
  Alcotest.run "iter2"
    [
      ( "matrix",
        [
          Alcotest.test_case "get/set" `Quick test_matrix_get_set;
          Alcotest.test_case "row views" `Quick test_matrix_row_views;
          Alcotest.test_case "view dot" `Quick test_matrix_view_dot;
          Alcotest.test_case "copy_rows/blit" `Quick test_matrix_copy_rows_blit;
          Alcotest.test_case "transpose" `Quick test_matrix_transpose;
          Alcotest.test_case "transpose par" `Quick
            test_matrix_transpose_par_matches;
          Alcotest.test_case "mul_ref" `Quick test_matrix_mul_ref;
          prop_transpose_involution;
        ] );
      ( "iter2",
        [
          Alcotest.test_case "build identity" `Quick test_build_of_matrix_identity;
          Alcotest.test_case "transpose iter" `Quick test_transpose_iter;
          Alcotest.test_case "map composition" `Quick test_iter2_map_composition;
        ] );
      ( "sgemm",
        [
          Alcotest.test_case "two-line sgemm all hints" `Quick
            test_sgemm_two_lines_all_hints;
          Alcotest.test_case "alpha" `Quick test_sgemm_alpha;
          Alcotest.test_case "nonsquare distributed" `Quick
            test_sgemm_nonsquare_distributed;
          Alcotest.test_case "block payload = row slices" `Quick
            test_outer_product_block_payload_is_rows_only;
          prop_sgemm_hint_invariance;
        ] );
      ( "reductions",
        [
          Alcotest.test_case "sum all hints" `Quick test_iter2_sum_all_hints;
          Alcotest.test_case "sum of outer product" `Quick
            test_iter2_sum_distributed_outer_product;
          Alcotest.test_case "map2" `Quick test_iter2_map2;
        ] );
      ( "rows",
        [
          Alcotest.test_case "rows iterator" `Quick test_rows_iterator;
          Alcotest.test_case "distributed row sum" `Quick
            test_rows_distributed_sum;
          prop_rows_ship_roundtrip;
        ] );
    ]
