(** Reference implementation of hybrid iterators: the pre-fusion,
    value-based encoding, kept verbatim as an executable specification.

    The production [Seq_iter]/[Stepper] pair was rewritten in the
    push-based indexed-stream-fusion style; this module preserves the
    old semantics — a pull-only stepper whose every combinator works on
    [Yield]/[Skip]/[Done] values, and the Figure-2 equations written
    against it — so the qcheck equivalence suite
    ([test_fusion_equiv.ml]) can assert that the new encoding yields
    exactly the same elements in exactly the same order for arbitrary
    pipelines.  It deliberately depends only on [Indexer]'s public
    record (shape + get) and on no other production stream code. *)

module Indexer = Triolet.Indexer
module Shape = Triolet.Shape

(** The old stepper: a suspended loop state plus a step function, pull
    face only. *)
module Ref_stepper = struct
  type ('a, 's) step = Yield of 'a * 's | Skip of 's | Done

  type 'a t = Stepper : 's * ('s -> ('a, 's) step) -> 'a t

  let empty = Stepper ((), fun () -> Done)

  let singleton x =
    Stepper (false, function false -> Yield (x, true) | true -> Done)

  let of_list l =
    Stepper (l, function [] -> Done | x :: rest -> Yield (x, rest))

  let range lo hi =
    Stepper (lo, fun i -> if i >= hi then Done else Yield (i, i + 1))

  let map g (Stepper (s0, next)) =
    Stepper
      ( s0,
        fun s ->
          match next s with
          | Yield (x, s') -> Yield (g x, s')
          | Skip s' -> Skip s'
          | Done -> Done )

  let filter p (Stepper (s0, next)) =
    Stepper
      ( s0,
        fun s ->
          match next s with
          | Yield (x, s') -> if p x then Yield (x, s') else Skip s'
          | Skip s' -> Skip s'
          | Done -> Done )

  let filter_map g (Stepper (s0, next)) =
    Stepper
      ( s0,
        fun s ->
          match next s with
          | Yield (x, s') -> (
              match g x with Some y -> Yield (y, s') | None -> Skip s')
          | Skip s' -> Skip s'
          | Done -> Done )

  let zip_with f (Stepper (sa0, na)) (Stepper (sb0, nb)) =
    Stepper
      ( (sa0, sb0, None),
        fun (sa, sb, pending) ->
          match pending with
          | None -> (
              match na sa with
              | Yield (a, sa') -> Skip (sa', sb, Some a)
              | Skip sa' -> Skip (sa', sb, None)
              | Done -> Done)
          | Some a -> (
              match nb sb with
              | Yield (b, sb') -> Yield (f a b, (sa, sb', None))
              | Skip sb' -> Skip (sa, sb', Some a)
              | Done -> Done) )

  let zip a b = zip_with (fun x y -> (x, y)) a b

  let concat_map g (Stepper (s0, next)) =
    let step (s, inner) =
      match inner with
      | Some (Stepper (is, inext)) -> (
          match inext is with
          | Yield (x, is') -> Yield (x, (s, Some (Stepper (is', inext))))
          | Skip is' -> Skip (s, Some (Stepper (is', inext)))
          | Done -> Skip (s, None))
      | None -> (
          match next s with
          | Yield (x, s') -> Skip (s', Some (g x))
          | Skip s' -> Skip (s', None)
          | Done -> Done)
    in
    Stepper ((s0, None), step)

  let fold f init (Stepper (s0, next)) =
    let rec go acc s =
      match next s with
      | Yield (x, s') -> go (f acc x) s'
      | Skip s' -> go acc s'
      | Done -> acc
    in
    go init s0

  let find p (Stepper (s0, next)) =
    let rec loop s =
      match next s with
      | Yield (x, s') -> if p x then Some x else loop s'
      | Skip s' -> loop s'
      | Done -> None
    in
    loop s0
end

type 'a t =
  | Idx_flat of (int, 'a) Indexer.t
  | Step_flat of 'a Ref_stepper.t
  | Idx_nest of (int, 'a t) Indexer.t
  | Step_nest of 'a t Ref_stepper.t

let empty = Step_flat Ref_stepper.empty

let singleton x = Step_flat (Ref_stepper.singleton x)

let of_array a = Idx_flat (Indexer.of_array a)

let of_floatarray a = Idx_flat (Indexer.of_floatarray a)

let of_list l = Step_flat (Ref_stepper.of_list l)

let range lo hi = Idx_flat (Indexer.range lo hi)

let indexer_to_stepper (t : (int, 'a) Indexer.t) =
  let n = Indexer.size t in
  Ref_stepper.Stepper
    ( 0,
      fun i ->
        if i >= n then Ref_stepper.Done
        else Ref_stepper.Yield (Indexer.get t i, i + 1) )

let rec to_stepper : 'a. 'a t -> 'a Ref_stepper.t = function
  | Idx_flat xs -> indexer_to_stepper xs
  | Step_flat xs -> xs
  | Idx_nest xss -> Ref_stepper.concat_map to_stepper (indexer_to_stepper xss)
  | Step_nest xss -> Ref_stepper.concat_map to_stepper xss

let zip a b =
  match (a, b) with
  | Idx_flat xs, Idx_flat ys -> Idx_flat (Indexer.zip xs ys)
  | _ -> Step_flat (Ref_stepper.zip (to_stepper a) (to_stepper b))

let zip_with f a b =
  match (a, b) with
  | Idx_flat xs, Idx_flat ys -> Idx_flat (Indexer.zip_with f xs ys)
  | _ -> Step_flat (Ref_stepper.zip_with f (to_stepper a) (to_stepper b))

let rec map : 'a 'b. ('a -> 'b) -> 'a t -> 'b t =
 fun f -> function
  | Idx_flat xs -> Idx_flat (Indexer.map f xs)
  | Step_flat xs -> Step_flat (Ref_stepper.map f xs)
  | Idx_nest xss -> Idx_nest (Indexer.map (map f) xss)
  | Step_nest xss -> Step_nest (Ref_stepper.map (map f) xss)

let rec filter : 'a. ('a -> bool) -> 'a t -> 'a t =
 fun p -> function
  | Idx_flat xs ->
      Idx_nest
        (Indexer.map
           (fun x ->
             Step_flat (Ref_stepper.filter p (Ref_stepper.singleton x)))
           xs)
  | Step_flat xs -> Step_flat (Ref_stepper.filter p xs)
  | Idx_nest xss -> Idx_nest (Indexer.map (filter p) xss)
  | Step_nest xss -> Step_nest (Ref_stepper.map (filter p) xss)

let rec filter_map : 'a 'b. ('a -> 'b option) -> 'a t -> 'b t =
 fun f -> function
  | Idx_flat xs ->
      Idx_nest
        (Indexer.map
           (fun x -> match f x with Some y -> singleton y | None -> empty)
           xs)
  | Step_flat xs -> Step_flat (Ref_stepper.filter_map f xs)
  | Idx_nest xss -> Idx_nest (Indexer.map (filter_map f) xss)
  | Step_nest xss -> Step_nest (Ref_stepper.map (filter_map f) xss)

let rec concat_map : 'a 'b. ('a -> 'b t) -> 'a t -> 'b t =
 fun f -> function
  | Idx_flat xs -> Idx_nest (Indexer.map f xs)
  | Step_flat xs -> Step_nest (Ref_stepper.map f xs)
  | Idx_nest xss -> Idx_nest (Indexer.map (concat_map f) xss)
  | Step_nest xss -> Step_nest (Ref_stepper.map (concat_map f) xss)

let append a b = Step_nest (Ref_stepper.of_list [ a; b ])

let indexer_fold f init t =
  Shape.fold (Indexer.shape t) (fun acc i -> f acc (Indexer.get t i)) init

let rec fold : 'a 'acc. ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc =
 fun f init -> function
  | Idx_flat xs -> indexer_fold f init xs
  | Step_flat xs -> Ref_stepper.fold f init xs
  | Idx_nest xss -> indexer_fold (fun acc it -> fold f acc it) init xss
  | Step_nest xss -> Ref_stepper.fold (fun acc it -> fold f acc it) init xss

let sum_float it = fold ( +. ) 0.0 it

let sum_int it = fold ( + ) 0 it

let length it = fold (fun n _ -> n + 1) 0 it

let to_list it = List.rev (fold (fun acc x -> x :: acc) [] it)

let exists p it = fold (fun found x -> found || p x) false it

let for_all p it = fold (fun ok x -> ok && p x) true it

let find p it = Ref_stepper.find p (to_stepper it)

let min_float it = fold Float.min Float.infinity it

let max_float it = fold Float.max Float.neg_infinity it
