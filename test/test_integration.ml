(* End-to-end integration: whole-pipeline scenarios across subsystems,
   with the *cluster geometry itself* randomized — results must be
   independent of node count, cores per node, and flat/two-level mode,
   and byte accounting must track the data actually sliced. *)

open Triolet
open Triolet_kernels
module Cluster = Triolet_runtime.Cluster
module Stats = Triolet_runtime.Stats
module Codec = Triolet_base.Codec

let () = Triolet_runtime.Pool.set_default_width 2

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen prop)

let gen_cluster =
  QCheck2.Gen.(
    map3
      (fun nodes cores flat -> { Cluster.nodes; cores_per_node = cores; flat })
      (int_range 1 6) (int_range 1 4) bool)

let ctx_of { Cluster.nodes; cores_per_node; flat } =
  Exec.make ~nodes ~cores_per_node
    ~backend:(if flat then Cluster.Flat else (Exec.default ()).Exec.backend)
    ()

let on cluster f = Exec.with_context (ctx_of cluster) f

(* ------------------------------------------------------------------ *)
(* Cluster-shape invariance of full kernels                            *)

let prop_mriq_cluster_invariant =
  qtest "mri-q result independent of cluster shape" gen_cluster (fun cfg ->
      let d = Dataset.mriq ~seed:201 ~samples:12 ~voxels:23 in
      let reference = Mriq.run_c d in
      on cfg (fun () -> Mriq.agrees ~eps:1e-9 reference (Mriq.run_triolet d)))

let prop_sgemm_cluster_invariant =
  qtest "sgemm result independent of cluster shape" gen_cluster (fun cfg ->
      let a, b = Dataset.sgemm_matrices ~seed:202 ~m:9 ~k:7 ~n:8 in
      let reference = Sgemm.run_c a b in
      on cfg (fun () -> Sgemm.agrees reference (Sgemm.run_triolet a b)))

let prop_tpacf_cluster_invariant =
  qtest "tpacf result independent of cluster shape" gen_cluster (fun cfg ->
      let d = Dataset.tpacf ~seed:203 ~points:18 ~random_sets:2 in
      let reference = Tpacf.run_c ~bins:8 d in
      on cfg (fun () -> Tpacf.agrees reference (Tpacf.run_triolet ~bins:8 d)))

let prop_cutcp_cluster_invariant =
  qtest "cutcp result independent of cluster shape" gen_cluster (fun cfg ->
      let c =
        Dataset.cutcp ~seed:204 ~atoms:12 ~nx:8 ~ny:7 ~nz:6 ~spacing:0.5
          ~cutoff:1.5
      in
      let reference = Cutcp.run_c c in
      on cfg (fun () ->
          Cutcp.agrees ~eps:1e-9 reference (Cutcp.run_triolet c)
          && Cutcp.agrees ~eps:1e-9 reference (Cutcp.run_gather c)))

(* ------------------------------------------------------------------ *)
(* Pipelines across the whole API surface                              *)

let prop_pipeline_cluster_invariant =
  qtest "filter/concat_map/zip pipeline independent of cluster shape"
    QCheck2.Gen.(pair gen_cluster (int_range 1 200))
    (fun (cfg, n) ->
      let xs = Float.Array.init n (fun i -> float_of_int (i mod 17)) in
      let run hint =
        Iter.of_floatarray xs
        |> hint
        |> Iter.zip_with (fun i x -> (i, x)) (Iter.range 0 n)
        |> Iter.filter (fun (i, _) -> i mod 3 <> 1)
        |> Iter.concat_map (fun (i, x) ->
               Seq_iter.map
                 (fun k -> x +. float_of_int k)
                 (Seq_iter.range 0 (i mod 4)))
        |> Iter.sum
      in
      let seq = run Iter.sequential in
      on cfg (fun () -> Float.abs (run Iter.par -. seq) <= 1e-9 *. (1.0 +. Float.abs seq)))

let prop_histogram_merge_associativity =
  qtest "histograms over any cluster = sequential histogram"
    QCheck2.Gen.(pair gen_cluster (list_size (int_range 1 150) (int_bound 11)))
    (fun (cfg, l) ->
      let a = Array.of_list l in
      let reference = Iter.histogram ~bins:12 (Iter.of_int_array a) in
      on cfg (fun () ->
          reference = Iter.histogram ~bins:12 (Iter.par (Iter.of_int_array a))))

(* ------------------------------------------------------------------ *)
(* Byte accounting end to end                                          *)

let test_scatter_volume_tracks_input () =
  (* Across cluster shapes, scatter volume for a sliced reduction stays
     ~ the input size (plus per-message headers), never nodes x input. *)
  let n = 4096 in
  let xs = Float.Array.make n 1.5 in
  List.iter
    (fun nodes ->
      Exec.with_context (Exec.make ~nodes ~cores_per_node:2 ())
        (fun () ->
          Stats.reset ();
          let _, d =
            Stats.measure (fun () -> Iter.sum (Iter.par (Iter.of_floatarray xs)))
          in
          let raw = 8 * n in
          Alcotest.(check bool)
            (Printf.sprintf "%d nodes sliced" nodes)
            true
            (d.Stats.bytes_sent > raw && d.Stats.bytes_sent < raw + (nodes * 256))))
    [ 1; 2; 5; 8 ]

let test_messages_scale_with_workers () =
  let xs = Float.Array.make 512 1.0 in
  let msgs cfg =
    on cfg (fun () ->
        Stats.reset ();
        let _, d =
          Stats.measure (fun () -> Iter.sum (Iter.par (Iter.of_floatarray xs)))
        in
        d.Stats.messages)
  in
  Alcotest.(check int) "two-level: 2 per node" 8
    (msgs { Cluster.nodes = 4; cores_per_node = 4; flat = false });
  Alcotest.(check int) "flat: 2 per core" 32
    (msgs { Cluster.nodes = 4; cores_per_node = 4; flat = true })

(* ------------------------------------------------------------------ *)
(* A full "user session": several consumers over one dataset           *)

let test_user_session () =
  Exec.with_context (Exec.make ~nodes:(3) ~cores_per_node:(2) ())
    (fun () ->
      let n = 1000 in
      let xs = Float.Array.init n (fun i -> sin (float_of_int i)) in
      let it () = Iter.par (Iter.of_floatarray xs) in
      (* statistics *)
      let total = Iter.sum (it ()) in
      let mn = Iter.min_float (it ()) and mx = Iter.max_float (it ()) in
      Alcotest.(check bool) "bounds" true (mn >= -1.0 && mx <= 1.0);
      Alcotest.(check bool) "mean consistent" true
        (Float.abs ((total /. float_of_int n) -. Iter.mean (it ())) < 1e-9);
      (* histogram of signs *)
      let h =
        Iter.histogram ~bins:2
          (Iter.map (fun x -> if x < 0.0 then 0 else 1) (it ()))
      in
      Alcotest.(check int) "histogram covers all" n (h.(0) + h.(1));
      (* packing a filtered projection preserves order *)
      let packed =
        Iter.collect_floats (Iter.filter (fun x -> x > 0.9) (it ()))
      in
      let reference =
        List.filter (fun x -> x > 0.9)
          (List.init n (fun i -> Float.Array.get xs i))
      in
      Alcotest.(check int) "packed length" (List.length reference)
        (Float.Array.length packed);
      List.iteri
        (fun i v ->
          Alcotest.(check (float 0.0)) "packed order" v (Float.Array.get packed i))
        reference)

let () =
  Alcotest.run "integration"
    [
      ( "cluster-shape invariance",
        [
          prop_mriq_cluster_invariant;
          prop_sgemm_cluster_invariant;
          prop_tpacf_cluster_invariant;
          prop_cutcp_cluster_invariant;
          prop_pipeline_cluster_invariant;
          prop_histogram_merge_associativity;
        ] );
      ( "byte accounting",
        [
          Alcotest.test_case "scatter tracks input" `Quick
            test_scatter_volume_tracks_input;
          Alcotest.test_case "messages per worker" `Quick
            test_messages_scale_with_workers;
        ] );
      ( "user session",
        [ Alcotest.test_case "several consumers" `Quick test_user_session ] );
    ]
