(* Tests for the static plan analyzer and the bounded protocol model
   checker: the coverage oracle (including a mutation check against an
   off-by-one grid), the qcheck tiling properties for Partition, plan
   reification over the real kernels, each verification pass, the
   unsafe-access ratchet, and the model checker on clean and
   deliberately broken protocol models. *)

open Triolet_analysis
module Partition = Triolet_runtime.Partition
module D = Triolet_kernels.Dataset

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Coverage oracle                                                     *)

let test_coverage_clean () =
  List.iter
    (fun (parts, n) ->
      check_bool
        (Printf.sprintf "blocks %d/%d" parts n)
        true
        (Coverage.covers_exactly_once ~n (Partition.blocks ~parts n)))
    [ (1, 0); (4, 0); (4, 1); (4, 3); (4, 13); (7, 100); (16, 17) ]

let test_coverage_gap () =
  match Coverage.check_blocks ~n:10 [| (0, 4); (6, 4) |] with
  | [ Coverage.Gap _ ] -> ()
  | vs ->
      Alcotest.failf "expected one gap, got: %s"
        (String.concat "; " (List.map Coverage.violation_to_string vs))

let test_coverage_overlap_names_blocks () =
  match Coverage.check_blocks ~n:10 [| (0, 5); (4, 6) |] with
  | [ Coverage.Overlap { block_a = 0; block_b = 1; _ } ] -> ()
  | vs ->
      Alcotest.failf "expected overlap of #0/#1, got: %s"
        (String.concat "; " (List.map Coverage.violation_to_string vs))

let test_coverage_empty_and_oob () =
  let vs = Coverage.check_blocks ~n:5 [| (0, 0); (0, 6) |] in
  check_bool "empty reported" true
    (List.exists
       (function Coverage.Empty_block { block = 0; _ } -> true | _ -> false)
       vs);
  check_bool "oob reported" true
    (List.exists
       (function
         | Coverage.Out_of_bounds { block = 1; _ } -> true | _ -> false)
       vs)

(* Mutation check: an off-by-one copy of Partition.grid — every row
   band after the first starts one row early — must be caught with the
   exact offending blocks named.  The clean grid passes the same
   oracle, so this is the coverage pass's discriminating power. *)
let buggy_grid ~row_parts ~col_parts ~rows ~cols =
  let row_blocks = Partition.blocks ~parts:row_parts rows in
  let col_blocks = Partition.blocks ~parts:col_parts cols in
  Array.concat
    (Array.to_list
       (Array.mapi
          (fun i (r0, nr) ->
            let r0, nr = if i > 0 then (r0 - 1, nr + 1) else (r0, nr) in
            Array.map (fun (c0, nc) -> (r0, nr, c0, nc)) col_blocks)
          row_blocks))

let test_mutated_grid_caught () =
  let rows = 7 and cols = 5 in
  let clean =
    Partition.grid ~row_parts:3 ~col_parts:2 ~rows ~cols
  in
  check_bool "clean grid passes" true
    (Coverage.grid_covers_exactly_once ~rows ~cols clean);
  let vs =
    Coverage.check_grid ~rows ~cols
      (buggy_grid ~row_parts:3 ~col_parts:2 ~rows ~cols)
  in
  check_bool "mutant caught" true (vs <> []);
  (* Row band 1 (blocks 2 and 3 in row-major block order) now overlaps
     band 0 (blocks 0 and 1): the witnesses must name those blocks. *)
  check_bool "overlap names blocks 0 and 2" true
    (List.exists
       (function
         | Coverage.Overlap { block_a = 0; block_b = 2; _ } -> true
         | _ -> false)
       vs);
  check_bool "overlap names blocks 1 and 3" true
    (List.exists
       (function
         | Coverage.Overlap { block_a = 1; block_b = 3; _ } -> true
         | _ -> false)
       vs)

(* ------------------------------------------------------------------ *)
(* qcheck tiling properties, expressed through the shared oracle       *)

let adversarial_n =
  (* skews toward the nasty cases: n < parts, n = 0, primes *)
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.int_range 0 7;
      QCheck2.Gen.oneofl [ 0; 1; 2; 3; 5; 7; 11; 13; 17; 19; 23; 97; 101 ];
      QCheck2.Gen.int_range 0 300;
    ]

let prop_blocks_cover =
  qtest "blocks tile [0, n) exactly once"
    QCheck2.Gen.(pair adversarial_n (int_range 1 17))
    (fun (n, parts) ->
      Coverage.covers_exactly_once ~n (Partition.blocks ~parts n))

let prop_grid_covers =
  qtest "grid tiles rows x cols exactly once"
    QCheck2.Gen.(
      tup4 (int_range 0 40) (int_range 0 40) (int_range 1 7) (int_range 1 7))
    (fun (rows, cols, rp, cp) ->
      Coverage.grid_covers_exactly_once ~rows ~cols
        (Partition.grid ~row_parts:rp ~col_parts:cp ~rows ~cols))

let prop_owner_agrees =
  qtest "owner agrees with blocks"
    QCheck2.Gen.(pair adversarial_n (int_range 1 17))
    (fun (n, parts) ->
      let blocks = Partition.blocks ~parts n in
      let ok = ref true in
      for i = 0 to n - 1 do
        let b = Partition.owner ~parts n i in
        let off, len = blocks.(b) in
        if not (off <= i && i < off + len) then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Partition degenerate inputs                                         *)

let test_grid_degenerate () =
  check_int "rows = 0" 0
    (Array.length (Partition.grid ~row_parts:3 ~col_parts:2 ~rows:0 ~cols:5));
  check_int "cols = 0" 0
    (Array.length (Partition.grid ~row_parts:3 ~col_parts:2 ~rows:5 ~cols:0));
  (* more parts than cells: capped, never empty or overlapping *)
  let g = Partition.grid ~row_parts:5 ~col_parts:4 ~rows:2 ~cols:3 in
  check_int "capped at cells" 6 (Array.length g);
  check_bool "still tiles" true
    (Coverage.grid_covers_exactly_once ~rows:2 ~cols:3 g)

let test_grid_invalid () =
  Alcotest.check_raises "zero parts"
    (Invalid_argument "Partition.grid: parts must be positive") (fun () ->
      ignore (Partition.grid ~row_parts:0 ~col_parts:2 ~rows:4 ~cols:4));
  Alcotest.check_raises "negative extent"
    (Invalid_argument "Partition.grid: negative extent") (fun () ->
      ignore (Partition.grid ~row_parts:2 ~col_parts:2 ~rows:(-1) ~cols:4))

let test_square_factors () =
  for p = 1 to 64 do
    let r, c = Partition.square_factors p in
    check_int (Printf.sprintf "factors of %d" p) p (r * c);
    check_bool "near-square order" true (r <= c)
  done

(* ------------------------------------------------------------------ *)
(* Plan reification over the real kernels                              *)

let with_cluster f =
  Triolet.Exec.with_context (Triolet.Exec.make ~nodes:(4) ~cores_per_node:(2) ())
    f

let kernel_plans () =
  [
    Plan.of_iter ~name:"mri-q"
      (Triolet_kernels.Mriq.pipeline (D.mriq ~seed:11 ~samples:16 ~voxels:40));
    (let a, b = D.sgemm_matrices ~seed:21 ~m:9 ~k:6 ~n:7 in
     Plan.of_iter2 ~name:"sgemm" (Triolet_kernels.Sgemm.pipeline a b));
    (let d = D.tpacf ~seed:31 ~points:16 ~random_sets:3 in
     Plan.of_iter ~name:"tpacf-dd" (Triolet_kernels.Tpacf.dd_pipeline ~bins:8 d));
    (let d = D.tpacf ~seed:31 ~points:16 ~random_sets:3 in
     Plan.of_iter ~name:"tpacf-rr" (Triolet_kernels.Tpacf.rr_pipeline ~bins:8 d));
    Plan.of_iter ~name:"cutcp"
      (Triolet_kernels.Cutcp.pipeline
         (D.cutcp ~seed:41 ~atoms:16 ~nx:6 ~ny:6 ~nz:6 ~spacing:0.5
            ~cutoff:1.5));
  ]

let test_kernel_plans_clean () =
  with_cluster (fun () ->
      let findings = Passes.run_all (kernel_plans ()) in
      List.iter
        (fun f ->
          if f.Passes.severity <> Passes.Info then
            Alcotest.failf "unexpected finding: %s" (Passes.to_string f))
        findings;
      check_bool "no errors" false (Passes.has_errors findings))

let test_plan_shapes () =
  with_cluster (fun () ->
      let shape name =
        let p = List.find (fun p -> p.Plan.name = name) (kernel_plans ()) in
        p.Plan.shape
      in
      (match shape "mri-q" with
      | Some (Triolet.Seq_iter.Shape_idx_flat _) -> ()
      | s ->
          Alcotest.failf "mri-q: expected IdxFlat, got %s"
            (match s with
            | Some s -> Triolet.Seq_iter.shape_to_string s
            | None -> "none"));
      match shape "tpacf-dd" with
      | Some (Triolet.Seq_iter.Shape_idx_nest _) -> ()
      | s ->
          Alcotest.failf "tpacf-dd: expected IdxNest, got %s"
            (match s with
            | Some s -> Triolet.Seq_iter.shape_to_string s
            | None -> "none"))

let test_plan_partitions () =
  with_cluster (fun () ->
      let plan name =
        List.find (fun p -> p.Plan.name = name) (kernel_plans ())
      in
      (match (plan "mri-q").Plan.partition with
      | Plan.Static_blocks b -> check_int "mri-q blocks" 4 (Array.length b)
      | _ -> Alcotest.fail "mri-q: expected static blocks");
      (match (plan "sgemm").Plan.partition with
      | Plan.Static_grid { row_parts; col_parts; _ } ->
          check_int "sgemm grid" 4 (row_parts * col_parts)
      | _ -> Alcotest.fail "sgemm: expected a block grid");
      match (plan "tpacf-dd").Plan.partition with
      | Plan.Dynamic_ranges { overridden = false; _ } -> ()
      | _ -> Alcotest.fail "tpacf-dd: expected auto dynamic ranges")

(* ------------------------------------------------------------------ *)
(* Individual passes on synthetic plans                                *)

(* zipping a non-flat operand (here: a filtered iterator, which is an
   IdxNest) degrades the whole nest to a flat stepper — the paper's
   "fusion lost" case. *)
let stepper_pipeline () =
  Triolet.Iter.zip
    (Triolet.Iter.filter (fun i -> i mod 2 = 0) (Triolet.Iter.range 0 10))
    (Triolet.Iter.range 0 10)

let test_fusion_warns_on_stepper () =
  with_cluster (fun () ->
      (* under a parallel hint the fusion pass must warn that random
         access — and with it partitioning — is lost *)
      let it = Triolet.Iter.localpar (stepper_pipeline ()) in
      let p = Plan.of_iter ~name:"stepper" it in
      match Passes.fusion p with
      | [ { Passes.severity = Passes.Warning; _ } ] -> ()
      | fs ->
          Alcotest.failf "expected one warning, got: %s"
            (String.concat "; " (List.map Passes.to_string fs)))

let test_fusion_silent_when_sequential () =
  (* the same stepper-headed nest is fine sequentially *)
  check_int "no findings" 0
    (List.length
       (Passes.fusion (Plan.of_iter ~name:"seq" (stepper_pipeline ()))))

let test_serialization_error_without_codec () =
  with_cluster (fun () ->
      (* a boxed source without a codec cannot be sliced for
         distribution: the pass must fail the plan *)
      let it = Triolet.Iter.par (Triolet.Iter.of_array [| "a"; "b"; "c" |]) in
      let p = Plan.of_iter ~name:"boxed" it in
      check_bool "error raised" true (Passes.has_errors (Passes.serialization p)))

let test_serialization_raw_is_info () =
  with_cluster (fun () ->
      let d = D.tpacf ~seed:31 ~points:16 ~random_sets:3 in
      let p =
        Plan.of_iter ~name:"tpacf-rr"
          (Triolet_kernels.Tpacf.rr_pipeline ~bins:8 d)
      in
      let fs = Passes.serialization p in
      check_bool "raw noted" true
        (List.exists (fun f -> f.Passes.severity = Passes.Info) fs);
      check_bool "but not an error" false (Passes.has_errors fs))

let test_coverage_pass_catches_bad_partition () =
  (* splice the buggy grid into an otherwise clean plan: the coverage
     pass must reject it and name the offending block pair *)
  with_cluster (fun () ->
      let a, b = D.sgemm_matrices ~seed:21 ~m:9 ~k:6 ~n:7 in
      let p =
        Plan.of_iter2 ~name:"sgemm-mutant" (Triolet_kernels.Sgemm.pipeline a b)
      in
      let p =
        {
          p with
          Plan.partition =
            Plan.Static_grid
              {
                row_parts = 3;
                col_parts = 2;
                blocks = buggy_grid ~row_parts:3 ~col_parts:2 ~rows:9 ~cols:7;
              };
        }
      in
      let fs = Passes.coverage p in
      check_bool "mutant rejected" true (Passes.has_errors fs);
      check_bool "names blocks" true
        (List.exists
           (fun f ->
             f.Passes.severity = Passes.Error
             && f.Passes.pass = "coverage"
             && f.Passes.plan = "sgemm-mutant")
           fs))

let test_grain_advisory () =
  let base =
    {
      Plan.name = "synthetic";
      hint = Triolet.Iter.Local;
      space = Plan.Space_1d 100;
      shape = None;
      partition = Plan.Dynamic_ranges { grain = 50; overridden = true };
      workers = 4;
      tasks = [];
    }
  in
  (* override yielding 2 chunks for 4 workers: starvation warning *)
  check_int "override warns" 1 (List.length (Passes.grain_advisory base));
  (* the same grain chosen automatically never warns *)
  check_int "auto silent" 0
    (List.length
       (Passes.grain_advisory
          {
            base with
            Plan.partition = Plan.Dynamic_ranges { grain = 50; overridden = false };
          }));
  (* a fine-grained override is fine *)
  check_int "fine override silent" 0
    (List.length
       (Passes.grain_advisory
          {
            base with
            Plan.partition = Plan.Dynamic_ranges { grain = 5; overridden = true };
          }))

(* ------------------------------------------------------------------ *)
(* Unsafe-access ratchet                                               *)

let test_unsafe_scan_flags_new_site () =
  let root = Filename.temp_file "triolet_scan" "" in
  Sys.remove root;
  Unix.mkdir root 0o755;
  Unix.mkdir (Filename.concat root "lib") 0o755;
  let file = Filename.concat (Filename.concat root "lib") "fresh.ml" in
  let oc = open_out file in
  (* assembled so the test file itself stays clean under the scan *)
  let call = "Float." ^ "Array." ^ "unsafe_get" in
  output_string oc
    (Printf.sprintf "let f a i = %s a i +. %s a (i + 1)\n" call call);
  close_out oc;
  let fs = Unsafe_scan.run ~root () in
  check_bool "new site is an error" true (Passes.has_errors fs);
  check_bool "file named" true
    (List.exists (fun f -> f.Passes.plan = "lib/fresh.ml") fs);
  Sys.remove file;
  Unix.rmdir (Filename.concat root "lib");
  Unix.rmdir root

let test_unsafe_scan_empty_tree_clean () =
  let root = Filename.temp_file "triolet_scan" "" in
  Sys.remove root;
  Unix.mkdir root 0o755;
  check_int "no findings" 0 (List.length (Unsafe_scan.run ~root ()));
  Unix.rmdir root

(* ------------------------------------------------------------------ *)
(* Protocol model checker                                              *)

module W = Triolet_sim.Protocol_models.Wsdeque_model
module M = Triolet_sim.Protocol_models.Mailbox_model

let test_wsdeque_clean () =
  let r = W.check () in
  check_bool "no violation" true (r.Triolet_sim.Modelcheck.violation = None);
  check_int "scenarios" 127 r.Triolet_sim.Modelcheck.scenarios;
  check_bool "explored" true (r.Triolet_sim.Modelcheck.interleavings > 1000)

let test_wsdeque_bugs_caught () =
  let dup = W.check ~bug:W.Steal_no_remove () in
  (match dup.Triolet_sim.Modelcheck.violation with
  | Some v ->
      check_bool "duplication named" true
        (String.length v.Triolet_sim.Modelcheck.message > 0)
  | None -> Alcotest.fail "Steal_no_remove not caught");
  let lost = W.check ~bug:W.Lose_pop_race () in
  match lost.Triolet_sim.Modelcheck.violation with
  | Some _ -> ()
  | None -> Alcotest.fail "Lose_pop_race not caught"

let test_mailbox_clean () =
  let r = M.check () in
  (match r.Triolet_sim.Modelcheck.violation with
  | None -> ()
  | Some v -> Alcotest.failf "unexpected: %s" v.Triolet_sim.Modelcheck.message);
  check_bool "scenarios explored" true (r.Triolet_sim.Modelcheck.scenarios > 100);
  check_bool "interleavings counted" true
    (r.Triolet_sim.Modelcheck.interleavings > 100)

let test_mailbox_bugs_caught () =
  (match (M.check ~bug:M.No_close_wakeup ()).Triolet_sim.Modelcheck.violation with
  | Some v ->
      check_bool "wakeup failure is terminal" true
        (v.Triolet_sim.Modelcheck.message <> "")
  | None -> Alcotest.fail "No_close_wakeup not caught");
  match (M.check ~bug:M.Drop_delayed ()).Triolet_sim.Modelcheck.violation with
  | Some _ -> ()
  | None -> Alcotest.fail "Drop_delayed not caught"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [
      ( "coverage",
        [
          Alcotest.test_case "clean partitions" `Quick test_coverage_clean;
          Alcotest.test_case "gap" `Quick test_coverage_gap;
          Alcotest.test_case "overlap names blocks" `Quick
            test_coverage_overlap_names_blocks;
          Alcotest.test_case "empty and out of bounds" `Quick
            test_coverage_empty_and_oob;
          Alcotest.test_case "mutated grid caught" `Quick
            test_mutated_grid_caught;
          prop_blocks_cover;
          prop_grid_covers;
          prop_owner_agrees;
        ] );
      ( "partition",
        [
          Alcotest.test_case "degenerate grids" `Quick test_grid_degenerate;
          Alcotest.test_case "invalid grids" `Quick test_grid_invalid;
          Alcotest.test_case "square factors" `Quick test_square_factors;
        ] );
      ( "plans",
        [
          Alcotest.test_case "kernel plans clean" `Quick
            test_kernel_plans_clean;
          Alcotest.test_case "shapes" `Quick test_plan_shapes;
          Alcotest.test_case "partitions" `Quick test_plan_partitions;
        ] );
      ( "passes",
        [
          Alcotest.test_case "fusion warns on stepper" `Quick
            test_fusion_warns_on_stepper;
          Alcotest.test_case "fusion silent when sequential" `Quick
            test_fusion_silent_when_sequential;
          Alcotest.test_case "serialization error without codec" `Quick
            test_serialization_error_without_codec;
          Alcotest.test_case "raw payloads are info" `Quick
            test_serialization_raw_is_info;
          Alcotest.test_case "coverage pass catches bad partition" `Quick
            test_coverage_pass_catches_bad_partition;
          Alcotest.test_case "grain advisory" `Quick test_grain_advisory;
        ] );
      ( "unsafe scan",
        [
          Alcotest.test_case "flags a new site" `Quick
            test_unsafe_scan_flags_new_site;
          Alcotest.test_case "clean tree" `Quick
            test_unsafe_scan_empty_tree_clean;
        ] );
      ( "model checker",
        [
          Alcotest.test_case "wsdeque clean" `Quick test_wsdeque_clean;
          Alcotest.test_case "wsdeque bugs caught" `Quick
            test_wsdeque_bugs_caught;
          Alcotest.test_case "mailbox clean" `Quick test_mailbox_clean;
          Alcotest.test_case "mailbox bugs caught" `Quick
            test_mailbox_bugs_caught;
        ] );
    ]
