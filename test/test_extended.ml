(* Tests for the extended library surface: stepper/folder/collector
   extras (scan, take_while, searches, keyed reduction), Seq_iter
   filter_map/append/Let_syntax comprehensions, Iter statistics, and
   pool exception propagation. *)

open Triolet

let check_int = Alcotest.(check int)
let check_il = Alcotest.(check (list int))
let check_float = Alcotest.(check (float 1e-9))

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen prop)

(* This suite spawns multi-domain pools and then runs ambient-context
   distributed pipelines, which the process backend's fork requirement
   forbids; ignore TRIOLET_BACKEND so the suite behaves identically
   under it (test_transport covers the process backend). *)
let () = Unix.putenv "TRIOLET_BACKEND" ""
let () = Triolet_runtime.Pool.set_default_width 2

let () =
  Exec.set_ambient (Exec.make ~nodes:(3) ~cores_per_node:(2) ())

(* ------------------------------------------------------------------ *)
(* Stepper extras                                                      *)

let slist = Stepper.to_list

let test_stepper_take_drop_while () =
  check_il "take_while" [ 0; 1; 2 ]
    (slist (Stepper.take_while (fun x -> x < 3) (Stepper.range 0 10)));
  check_il "take_while all" [ 0; 1 ]
    (slist (Stepper.take_while (fun _ -> true) (Stepper.range 0 2)));
  check_il "drop_while" [ 3; 4 ]
    (slist (Stepper.drop_while (fun x -> x < 3) (Stepper.range 0 5)));
  check_il "drop_while nothing" [ 0; 1 ]
    (slist (Stepper.drop_while (fun _ -> false) (Stepper.range 0 2)));
  (* drop_while only drops the *prefix* *)
  check_il "prefix only" [ 5; 1; 6 ]
    (slist (Stepper.drop_while (fun x -> x < 3) (Stepper.of_list [ 1; 2; 5; 1; 6 ])))

let test_stepper_scan () =
  check_il "prefix sums" [ 1; 3; 6; 10 ]
    (slist (Stepper.scan ( + ) 0 (Stepper.range 1 5)));
  check_il "scan of empty" [] (slist (Stepper.scan ( + ) 0 Stepper.empty));
  (* scan interacts with skips: filtered elements don't emit *)
  check_il "scan over filter" [ 0; 2; 6; 12 ]
    (slist
       (Stepper.scan ( + ) 0
          (Stepper.filter (fun x -> x mod 2 = 0) (Stepper.range 0 8))))

let test_stepper_searches () =
  Alcotest.(check bool) "exists" true
    (Stepper.exists (fun x -> x = 7) (Stepper.range 0 10));
  Alcotest.(check bool) "not exists" false
    (Stepper.exists (fun x -> x = 70) (Stepper.range 0 10));
  Alcotest.(check bool) "for_all" true
    (Stepper.for_all (fun x -> x >= 0) (Stepper.range 0 10));
  Alcotest.(check bool) "for_all empty" true
    (Stepper.for_all (fun _ -> false) Stepper.empty);
  Alcotest.(check (option int)) "find" (Some 3)
    (Stepper.find (fun x -> x mod 3 = 0 && x > 0) (Stepper.range 1 10));
  Alcotest.(check (option int)) "find none" None
    (Stepper.find (fun x -> x > 100) (Stepper.range 0 10))

let test_stepper_minmax_equal () =
  check_float "min" 1.5 (Stepper.min_float (Stepper.of_list [ 3.0; 1.5; 2.0 ]));
  check_float "max" 3.0 (Stepper.max_float (Stepper.of_list [ 3.0; 1.5; 2.0 ]));
  Alcotest.(check bool) "min empty" true
    (Stepper.min_float Stepper.empty = Float.infinity);
  Alcotest.(check bool) "equal" true
    (Stepper.equal ( = )
       (Stepper.filter (fun x -> x mod 2 = 0) (Stepper.range 0 10))
       (Stepper.map (fun x -> 2 * x) (Stepper.range 0 5)));
  Alcotest.(check bool) "not equal (length)" false
    (Stepper.equal ( = ) (Stepper.range 0 3) (Stepper.range 0 4))

(* ------------------------------------------------------------------ *)
(* Folder / Collector extras                                           *)

let test_folder_extras () =
  let f = Folder.of_list [ 4; 2; 9 ] in
  Alcotest.(check bool) "exists" true (Folder.exists (fun x -> x = 9) f);
  Alcotest.(check bool) "for_all" false (Folder.for_all (fun x -> x < 9) f);
  check_int "count_if" 2 (Folder.count_if (fun x -> x mod 2 = 0) f);
  check_float "min" 2.0 (Folder.min_float (Folder.of_list [ 4.0; 2.0 ]));
  check_float "max" 4.0 (Folder.max_float (Folder.of_list [ 4.0; 2.0 ]))

let test_collector_take () =
  check_il "take" [ 0; 1; 2 ] (Collector.to_list (Collector.take 3 (Collector.range 0 100)));
  check_il "take more than available" [ 0; 1 ]
    (Collector.to_list (Collector.take 5 (Collector.range 0 2)))

let test_collector_reduce_by_key () =
  let pairs =
    Collector.of_list [ (0, 2.0); (1, 3.0); (0, 4.0); (9, 1.0); (-1, 5.0) ]
  in
  let table = Collector.reduce_by_key ~size:3 ~merge:( +. ) ~init:0.0 pairs in
  check_float "key 0" 6.0 table.(0);
  check_float "key 1" 3.0 table.(1);
  check_float "key 2 untouched" 0.0 table.(2);
  (* keyed max instead of sum *)
  let table2 =
    Collector.reduce_by_key ~size:2 ~merge:Float.max ~init:Float.neg_infinity
      (Collector.of_list [ (0, 2.0); (0, 7.0); (1, 1.0) ])
  in
  check_float "keyed max" 7.0 table2.(0)

let test_collector_minmax () =
  check_float "min" (-2.0) (Collector.min_float (Collector.of_list [ 3.0; -2.0 ]));
  check_float "max" 3.0 (Collector.max_float (Collector.of_list [ 3.0; -2.0 ]))

(* ------------------------------------------------------------------ *)
(* Seq_iter extras                                                     *)

let test_seq_iter_filter_map () =
  let it =
    Seq_iter.filter_map
      (fun x -> if x mod 2 = 0 then Some (x * 10) else None)
      (Seq_iter.range 0 6)
  in
  check_il "contents" [ 0; 20; 40 ] (Seq_iter.to_list it);
  (* outer random access preserved, like filter *)
  Alcotest.(check (option int)) "outer length" (Some 6)
    (Seq_iter.outer_length it)

let test_seq_iter_append () =
  check_il "append" [ 1; 2; 3; 4 ]
    (Seq_iter.to_list
       (Seq_iter.append (Seq_iter.of_list [ 1; 2 ]) (Seq_iter.range 3 5)));
  check_int "sum over append" 10
    (Seq_iter.sum_int
       (Seq_iter.append (Seq_iter.of_list [ 1; 2 ]) (Seq_iter.of_list [ 3; 4 ])))

let test_seq_iter_searches () =
  Alcotest.(check bool) "exists" true
    (Seq_iter.exists (fun x -> x = 3) (Seq_iter.range 0 5));
  Alcotest.(check bool) "for_all" true
    (Seq_iter.for_all (fun x -> x < 5) (Seq_iter.range 0 5));
  Alcotest.(check (option int)) "find" (Some 4)
    (Seq_iter.find
       (fun x -> x * x > 10)
       (Seq_iter.filter (fun x -> x mod 2 = 0) (Seq_iter.range 0 10)));
  check_float "min/max" 5.0
    (Seq_iter.max_float (Seq_iter.of_floatarray (Float.Array.of_list [ 5.0; 1.0 ])))

let test_let_syntax_comprehension () =
  (* The cutcp comprehension shape:
     [f a r | a <- atoms, r <- gridPts a] *)
  let open Seq_iter.Let_syntax in
  let atoms = Seq_iter.range 1 4 in
  let it =
    let* a = atoms in
    let* r = Seq_iter.range 0 a in
    return ((10 * a) + r)
  in
  check_il "nested comprehension" [ 10; 20; 21; 30; 31; 32 ]
    (Seq_iter.to_list it);
  (* let+ maps, and* zips *)
  let it2 =
    let+ x = Seq_iter.range 0 3 and+ y = Seq_iter.range 10 13 in
    x + y
  in
  check_il "applicative zip" [ 10; 12; 14 ] (Seq_iter.to_list it2)

let test_let_syntax_outer_parallelizable () =
  (* Comprehensions over indexers keep a partitionable outer loop. *)
  let open Seq_iter.Let_syntax in
  let it =
    let* a = Seq_iter.of_array [| 2; 0; 1 |] in
    Seq_iter.range 0 a
  in
  Alcotest.(check (option int)) "outer length" (Some 3)
    (Seq_iter.outer_length it);
  check_il "first outer element only" [ 0; 1 ]
    (Seq_iter.to_list (Seq_iter.slice_outer it 0 1))

(* ------------------------------------------------------------------ *)
(* Iter extras                                                         *)

let with_hint h it =
  match h with
  | Iter.Sequential -> Iter.sequential it
  | Iter.Local -> Iter.localpar it
  | Iter.Distributed -> Iter.par it

let each_hint f =
  List.iter
    (fun (name, h) -> f name h)
    [ ("seq", Iter.Sequential); ("localpar", Iter.Local);
      ("par", Iter.Distributed) ]

let test_iter_filter_map () =
  each_hint (fun name h ->
      check_int ("filter_map " ^ name) 2450
        (Iter.sum_int
           (Iter.filter_map
              (fun x -> if x mod 2 = 0 then Some x else None)
              (with_hint h (Iter.range 0 100)))))

let test_iter_statistics () =
  let fa = Float.Array.init 1000 (fun i -> float_of_int ((i * 37) mod 101)) in
  let reference_mean =
    Float.Array.fold_left ( +. ) 0.0 fa /. float_of_int (Float.Array.length fa)
  in
  each_hint (fun name h ->
      let it () = with_hint h (Iter.of_floatarray fa) in
      check_float ("min " ^ name) 0.0 (Iter.min_float (it ()));
      check_float ("max " ^ name) 100.0 (Iter.max_float (it ()));
      Alcotest.(check bool) ("mean " ^ name) true
        (Float.abs (Iter.mean (it ()) -. reference_mean) < 1e-6);
      Alcotest.(check bool) ("exists " ^ name) true
        (Iter.exists (fun x -> x = 100.0) (it ()));
      Alcotest.(check bool) ("for_all " ^ name) true
        (Iter.for_all (fun x -> x >= 0.0) (it ())))

let test_iter_stats_empty () =
  let e = Iter.of_floatarray (Float.Array.create 0) in
  Alcotest.(check bool) "min empty" true (Iter.min_float e = Float.infinity);
  Alcotest.(check bool) "mean empty" true (Float.is_nan (Iter.mean e))

(* ------------------------------------------------------------------ *)
(* Pool exception safety                                               *)

exception Boom of int

let test_pool_exception_propagates () =
  let p = Triolet_runtime.Pool.create ~workers:3 () in
  Fun.protect
    ~finally:(fun () -> Triolet_runtime.Pool.shutdown p)
    (fun () ->
      Alcotest.(check bool) "raises" true
        (try
           Triolet_runtime.Pool.parallel_for p ~lo:0 ~hi:1000 (fun i ->
               if i = 567 then raise (Boom i));
           false
         with Boom 567 -> true);
      (* the pool survives and runs subsequent jobs *)
      let s =
        Triolet_runtime.Pool.parallel_reduce p ~lo:0 ~hi:100 ~f:Fun.id
          ~merge:( + ) ~init:0 ()
      in
      check_int "pool alive after exception" 4950 s)

let test_pool_exception_in_consumer () =
  Alcotest.(check bool) "iter consumer propagates" true
    (try
       ignore
         (Iter.sum
            (Iter.map
               (fun x -> if x = 77.0 then failwith "bad element" else x)
               (Iter.localpar
                  (Iter.of_floatarray (Float.Array.init 200 float_of_int)))));
       false
     with Failure _ -> true);
  (* subsequent consumption works *)
  check_float "pool usable" 4950.0
    (Iter.sum (Iter.localpar (Iter.of_floatarray (Float.Array.init 100 float_of_int))))

(* ------------------------------------------------------------------ *)
(* Failure injection: corrupted wire data                              *)

let test_corrupt_payload_rejected () =
  let p = [ Triolet_base.Payload.Floats (Float.Array.make 8 1.0) ] in
  let bytes = Triolet_base.Codec.to_bytes Triolet_base.Payload.codec p in
  (* truncate mid-array *)
  let cut = Bytes.sub bytes 0 (Bytes.length bytes - 5) in
  Alcotest.(check bool) "truncation detected" true
    (try
       ignore (Triolet_base.Codec.of_bytes Triolet_base.Payload.codec cut);
       false
     with Triolet_base.Rw.Underflow -> true);
  (* corrupt the length header to a huge value *)
  let huge = Bytes.copy bytes in
  Bytes.set_int64_le huge 8 4611686018427387904L;
  Alcotest.(check bool) "bogus length detected" true
    (try
       ignore (Triolet_base.Codec.of_bytes Triolet_base.Payload.codec huge);
       false
     with Triolet_base.Rw.Underflow | Invalid_argument _ | Out_of_memory ->
       true)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let gen_small = QCheck2.Gen.(list_size (int_bound 40) (int_range (-50) 50))

let prop_scan_last_is_fold =
  qtest "scan's last element = fold" gen_small (fun l ->
      match l with
      | [] -> true
      | _ ->
          let scanned = slist (Stepper.scan ( + ) 0 (Stepper.of_list l)) in
          List.nth scanned (List.length scanned - 1)
          = List.fold_left ( + ) 0 l)

let prop_filter_map_decomposes =
  qtest "filter_map = filter . map" gen_small (fun l ->
      let f x = if x > 0 then Some (x * 2) else None in
      Seq_iter.to_list (Seq_iter.filter_map f (Seq_iter.of_list l))
      = Seq_iter.to_list
          (Seq_iter.map
             (fun x -> x * 2)
             (Seq_iter.filter (fun x -> x > 0) (Seq_iter.of_list l))))

let prop_let_syntax_is_concat_map =
  qtest "let* = concat_map"
    QCheck2.Gen.(list_size (int_bound 15) (int_bound 4))
    (fun l ->
      let open Seq_iter.Let_syntax in
      let a =
        Seq_iter.to_list
          (let* x = Seq_iter.of_list l in
           Seq_iter.range 0 x)
      in
      let b =
        Seq_iter.to_list
          (Seq_iter.concat_map (fun x -> Seq_iter.range 0 x) (Seq_iter.of_list l))
      in
      a = b)

let prop_mean_matches_reference =
  qtest "mean matches direct computation"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 10.0))
    (fun l ->
      let fa = Float.Array.of_list l in
      let reference = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
      Float.abs (Iter.mean (Iter.par (Iter.of_floatarray fa)) -. reference)
      < 1e-9)

let main_suites =
    [
      ( "stepper",
        [
          Alcotest.test_case "take/drop_while" `Quick test_stepper_take_drop_while;
          Alcotest.test_case "scan" `Quick test_stepper_scan;
          Alcotest.test_case "searches" `Quick test_stepper_searches;
          Alcotest.test_case "min/max/equal" `Quick test_stepper_minmax_equal;
          prop_scan_last_is_fold;
        ] );
      ( "folder-collector",
        [
          Alcotest.test_case "folder extras" `Quick test_folder_extras;
          Alcotest.test_case "collector take" `Quick test_collector_take;
          Alcotest.test_case "reduce_by_key" `Quick test_collector_reduce_by_key;
          Alcotest.test_case "collector min/max" `Quick test_collector_minmax;
        ] );
      ( "seq_iter",
        [
          Alcotest.test_case "filter_map" `Quick test_seq_iter_filter_map;
          Alcotest.test_case "append" `Quick test_seq_iter_append;
          Alcotest.test_case "searches" `Quick test_seq_iter_searches;
          Alcotest.test_case "let-syntax comprehension" `Quick
            test_let_syntax_comprehension;
          Alcotest.test_case "comprehension outer sliceable" `Quick
            test_let_syntax_outer_parallelizable;
          prop_filter_map_decomposes;
          prop_let_syntax_is_concat_map;
        ] );
      ( "iter",
        [
          Alcotest.test_case "filter_map" `Quick test_iter_filter_map;
          Alcotest.test_case "statistics" `Quick test_iter_statistics;
          Alcotest.test_case "empty stats" `Quick test_iter_stats_empty;
          prop_mean_matches_reference;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "pool exception propagates" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "consumer exception" `Quick
            test_pool_exception_in_consumer;
          Alcotest.test_case "corrupt payload rejected" `Quick
            test_corrupt_payload_rejected;
        ] );
    ]

(* Monad laws for Seq_iter's Let_syntax, and Iter.sub. *)

let eq_iter a b = Seq_iter.to_list a = Seq_iter.to_list b

let gen_small_pos = QCheck2.Gen.(list_size (int_bound 15) (int_bound 5))

let prop_monad_left_identity =
  qtest "let*: left identity" QCheck2.Gen.(int_bound 10) (fun x ->
      let open Seq_iter.Let_syntax in
      let f v = Seq_iter.range 0 v in
      eq_iter
        (let* y = return x in
         f y)
        (f x))

let prop_monad_right_identity =
  qtest "let*: right identity" gen_small_pos (fun l ->
      let open Seq_iter.Let_syntax in
      let m = Seq_iter.of_list l in
      eq_iter
        (let* x = m in
         return x)
        (Seq_iter.of_list l))

let prop_monad_associativity =
  qtest "let*: associativity" gen_small_pos (fun l ->
      let open Seq_iter.Let_syntax in
      let m = Seq_iter.of_list l in
      let f v = Seq_iter.range 0 v in
      let g v = Seq_iter.range v (v + 2) in
      let lhs =
        let* y =
          let* x = m in
          f x
        in
        g y
      in
      let rhs =
        let* x = Seq_iter.of_list l in
        let* y = f x in
        g y
      in
      eq_iter lhs rhs)

let test_iter_sub () =
  let it = Iter.range 0 100 in
  let s = Iter.sub ~off:10 ~len:5 it in
  check_int "len" 5 (Iter.length s);
  check_il "contents" [ 10; 11; 12; 13; 14 ] (Iter.to_list s);
  check_int "distributed sum" 60 (Iter.sum_int (Iter.par s));
  Alcotest.check_raises "oob" (Invalid_argument "Iter.sub") (fun () ->
      ignore (Iter.sub ~off:90 ~len:20 it))

let prop_iter_sub_glues =
  qtest "sub slices glue back"
    QCheck2.Gen.(pair (int_range 1 60) (int_range 1 5))
    (fun (n, k) ->
      let it = Iter.map (fun x -> x * 3) (Iter.range 0 n) in
      let blocks = Triolet_runtime.Partition.blocks ~parts:k n in
      let glued =
        Array.to_list blocks
        |> List.concat_map (fun (off, len) -> Iter.to_list (Iter.sub ~off ~len it))
      in
      glued = Iter.to_list it)

let law_suites =
  [
    ( "monad-laws",
      [
        prop_monad_left_identity;
        prop_monad_right_identity;
        prop_monad_associativity;
      ] );
    ( "iter-sub",
      [ Alcotest.test_case "sub" `Quick test_iter_sub; prop_iter_sub_glues ] );
  ]

(* Stdlib Seq interop, Iter.of_list, and versioned codecs. *)

let test_seq_interop () =
  let s = Seq.ints 0 |> Seq.take 5 in
  check_il "of_seq" [ 0; 1; 2; 3; 4 ] (Stepper.to_list (Stepper.of_seq s));
  check_il "to_seq" [ 0; 2; 4 ]
    (List.of_seq
       (Stepper.to_seq (Stepper.filter (fun x -> x mod 2 = 0) (Stepper.range 0 6))));
  check_il "seq_iter roundtrip" [ 1; 2 ]
    (List.of_seq (Seq_iter.to_seq (Seq_iter.of_seq (List.to_seq [ 1; 2 ]))));
  (* to_seq is lazily re-walkable *)
  let sq = Stepper.to_seq (Stepper.range 0 3) in
  check_int "walk twice" (List.length (List.of_seq sq)) (List.length (List.of_seq sq))

let test_iter_of_list () =
  check_il "contents" [ 5; 6; 7 ] (Iter.to_list (Iter.of_list [ 5; 6; 7 ]));
  check_int "distributed with codec" 18
    (Iter.sum_int
       (Iter.par (Iter.of_list ~codec:Triolet_base.Codec.int [ 5; 6; 7 ])))

let test_versioned_codec () =
  let module Codec = Triolet_base.Codec in
  let c = Codec.versioned ~version:3 (Codec.pair Codec.int Codec.string) in
  Alcotest.(check (pair int string)) "roundtrip" (7, "x")
    (Codec.roundtrip c (7, "x"));
  check_int "size includes envelope"
    (2 + Codec.(pair int string).Codec.size (7, "x"))
    (c.Codec.size (7, "x"));
  (* decoding with a different version fails loudly *)
  let bytes = Codec.to_bytes c (7, "x") in
  let c4 = Codec.versioned ~version:4 (Codec.pair Codec.int Codec.string) in
  Alcotest.(check bool) "version mismatch" true
    (try
       ignore (Codec.of_bytes c4 bytes);
       false
     with Codec.Version_mismatch { expected = 4; got = 3 } -> true);
  (* decoding unversioned bytes fails on the magic *)
  Alcotest.(check bool) "bad magic" true
    (try
       ignore (Codec.of_bytes c (Codec.to_bytes Codec.int 99));
       false
     with Triolet_base.Rw.Underflow -> true)

let () =
  Alcotest.run "extended"
    (main_suites @ law_suites
    @ [
        ( "interop",
          [
            Alcotest.test_case "Seq interop" `Quick test_seq_interop;
            Alcotest.test_case "Iter.of_list" `Quick test_iter_of_list;
            Alcotest.test_case "versioned codec" `Quick test_versioned_codec;
          ] );
      ])
