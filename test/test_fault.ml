(* Fault-tolerance tests: the checksummed codec envelope, mailbox
   timeouts/poison, the deterministic fault injector, and recovery in
   the cluster runtime — including the four kernels computing correct
   results under injected crashes, corruption, drops, duplicates and
   stragglers. *)

open Triolet_runtime
module Codec = Triolet_base.Codec
module Rw = Triolet_base.Rw
module Payload = Triolet_base.Payload

(* This suite spawns multi-domain pools and then runs ambient-context
   distributed pipelines, which the process backend's fork requirement
   forbids; ignore TRIOLET_BACKEND so the suite behaves identically
   under it (test_transport covers the process backend). *)
let () = Unix.putenv "TRIOLET_BACKEND" ""
let () = Pool.set_default_width 2

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qtest ?count name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ?count ~name gen prop)

let with_pool w f =
  let p = Pool.create ~workers:w () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* Fast fault plans so retry rounds take milliseconds. *)
let fast ?drop ?duplicate ?corrupt ?delay ?faults_of ?crash ?stragglers
    ?(max_attempts = 8) ~seed () =
  Fault.spec ?drop ?duplicate ?corrupt ?delay ?faults_of ?crash ?stragglers
    ~max_attempts ~base_timeout:0.002 ~max_timeout:0.02 ~seed ()

(* ------------------------------------------------------------------ *)
(* Codec: checksummed envelope and whole-buffer decoding               *)

let payload_gen : Payload.t QCheck2.Gen.t =
  QCheck2.Gen.(
    list_size (int_range 1 4)
      (oneof
         [
           map
             (fun l -> Payload.Floats (Float.Array.of_list l))
             (list_size (int_bound 20) (float_range (-1000.) 1000.));
           map (fun l -> Payload.Ints (Array.of_list l)) (small_list int);
           map (fun s -> Payload.Raw s) (string_size (int_bound 30));
         ]))

let test_checksummed_roundtrip () =
  let c = Codec.checksummed (Codec.pair Codec.int Codec.string) in
  Alcotest.(check (pair int string))
    "roundtrip" (42, "hello")
    (Codec.roundtrip c (42, "hello"));
  check_int "size = 12 + inner"
    (12 + Codec.(pair int string).Codec.size (42, "hello"))
    (c.Codec.size (42, "hello"));
  check_int "wire size matches size"
    (c.Codec.size (42, "hello"))
    (Bytes.length (Codec.to_bytes c (42, "hello")))

let test_checksummed_detects_flip () =
  let c = Codec.checksummed Codec.(pair int float) in
  let bytes = Codec.to_bytes c (7, 3.14) in
  (* flip one payload byte: must raise Checksum_mismatch *)
  let b = Bytes.copy bytes in
  let pos = Bytes.length b - 1 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  check_bool "flip detected" true
    (match Codec.of_bytes c b with
    | _ -> false
    | exception Codec.Checksum_mismatch _ -> true)

let test_of_bytes_rejects_trailing () =
  let bytes = Codec.to_bytes Codec.int 5 in
  let padded = Bytes.cat bytes (Bytes.make 3 'x') in
  check_bool "trailing garbage raises" true
    (match Codec.of_bytes Codec.int padded with
    | _ -> false
    | exception Codec.Trailing_bytes 3 -> true);
  (* the exact buffer still decodes *)
  check_int "exact buffer ok" 5 (Codec.of_bytes Codec.int bytes)

(* Property: a checksummed envelope NEVER silently decodes a corrupted
   byte stream — any single-byte change raises. *)
let prop_checksummed_never_decodes_corruption =
  qtest "corrupted checksummed stream always raises"
    QCheck2.Gen.(triple payload_gen (int_bound 10_000) (int_range 1 255))
    (fun (p, posseed, mask) ->
      let c = Codec.checksummed Payload.codec in
      let bytes = Codec.to_bytes c p in
      let pos = posseed mod Bytes.length bytes in
      let b = Bytes.copy bytes in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
      match Codec.of_bytes c b with
      | _ -> false (* silent decode of corruption: the bug we forbid *)
      | exception
          ( Codec.Checksum_mismatch _ | Codec.Trailing_bytes _ | Rw.Underflow
          | Invalid_argument _ | Out_of_memory ) ->
          true)

let prop_plain_codec_roundtrip_still_exact =
  qtest "checksummed roundtrips arbitrary payloads" payload_gen (fun p ->
      let c = Codec.checksummed Payload.codec in
      Codec.of_bytes c (Codec.to_bytes c p) = p)

(* ------------------------------------------------------------------ *)
(* Mailbox: timeouts, poison, delayed messages                         *)

let test_recv_timeout_empty () =
  let mb = Mailbox.create () in
  (* Measure on the same monotonic clock the deadline arithmetic uses:
     the wall clock could step mid-wait and fail this spuriously. *)
  let t0 = Clock.monotonic_ns () in
  (match Mailbox.recv_timeout mb 0.01 with
  | `Timeout -> ()
  | `Msg _ | `Closed -> Alcotest.fail "expected timeout");
  let waited = float_of_int (Clock.monotonic_ns () - t0) /. 1e9 in
  check_bool "waited at least the timeout" true (waited >= 0.009)

let test_recv_timeout_message () =
  let mb = Mailbox.create () in
  Mailbox.send mb (Bytes.of_string "hi");
  match Mailbox.recv_timeout mb 0.01 with
  | `Msg b -> Alcotest.(check string) "msg" "hi" (Bytes.to_string b)
  | `Timeout | `Closed -> Alcotest.fail "expected message"

let test_recv_timeout_cross_domain () =
  (* The empty-mailbox blocking path: a receiver blocked in
     recv_timeout is woken by a send from another domain. *)
  let mb = Mailbox.create () in
  let sender =
    Domain.spawn (fun () ->
        Unix.sleepf 0.005;
        Mailbox.send mb (Bytes.of_string "late"))
  in
  (match Mailbox.recv_timeout mb 1.0 with
  | `Msg b -> Alcotest.(check string) "woken by send" "late" (Bytes.to_string b)
  | `Timeout | `Closed -> Alcotest.fail "expected message");
  Domain.join sender

let test_close_wakes_blocked_recv () =
  (* recv blocks on an empty mailbox until close poisons it. *)
  let mb = Mailbox.create () in
  let receiver =
    Domain.spawn (fun () ->
        match Mailbox.recv mb with
        | _ -> false
        | exception Mailbox.Closed -> true)
  in
  Unix.sleepf 0.005;
  Mailbox.close mb;
  check_bool "blocked recv woken with Closed" true (Domain.join receiver)

let test_close_semantics () =
  let mb = Mailbox.create () in
  Mailbox.send mb (Bytes.of_string "pending");
  Mailbox.close mb;
  (* pending drains, then Closed *)
  Alcotest.(check string) "drains pending" "pending"
    (Bytes.to_string (Mailbox.recv mb));
  check_bool "recv raises after drain" true
    (match Mailbox.recv mb with
    | _ -> false
    | exception Mailbox.Closed -> true);
  check_bool "send raises" true
    (match Mailbox.send mb (Bytes.of_string "x") with
    | () -> false
    | exception Mailbox.Closed -> true);
  match Mailbox.recv_timeout mb 0.01 with
  | `Closed -> ()
  | `Msg _ | `Timeout -> Alcotest.fail "expected `Closed"

let test_delayed_promoted_by_timeout () =
  let mb = Mailbox.create () in
  Mailbox.send_delayed mb (Bytes.of_string "slow");
  check_int "parked" 1 (Mailbox.delayed_pending mb);
  check_int "invisible" 0 (Mailbox.pending mb);
  Alcotest.(check bool) "try_recv misses it" true (Mailbox.try_recv mb = None);
  (* a timed-out receive promotes it... *)
  (match Mailbox.recv_timeout mb 0.005 with
  | `Timeout -> ()
  | `Msg _ | `Closed -> Alcotest.fail "expected timeout");
  check_int "promoted" 0 (Mailbox.delayed_pending mb);
  (* ...and the next receive observes it *)
  match Mailbox.recv_timeout mb 0.005 with
  | `Msg b -> Alcotest.(check string) "late arrival" "slow" (Bytes.to_string b)
  | `Timeout | `Closed -> Alcotest.fail "expected late message"

(* ------------------------------------------------------------------ *)
(* Fault injector determinism                                          *)

let run_schedule seed =
  let f = Fault.make (fast ~drop:0.3 ~duplicate:0.3 ~corrupt:0.3 ~delay:0.3 ~seed ()) in
  let mb = Mailbox.create () in
  for i = 0 to 49 do
    Fault.send f ~link:(Fault.To_node (i mod 4)) mb (Bytes.make 16 'a')
  done;
  (Fault.counters f, Mailbox.totals mb)

let test_injector_deterministic () =
  let a = run_schedule 7 and b = run_schedule 7 and c = run_schedule 8 in
  check_bool "same seed, same schedule" true (a = b);
  check_bool "different seed, different schedule" true (a <> c)

(* Service-fault injection points: seeded, deterministic, and inert at
   rate zero. *)

let inject_schedule ~heartbeat_loss ~crash_on_respawn ~seed n =
  let f =
    Fault.make (Fault.spec ~heartbeat_loss ~crash_on_respawn ~seed ())
  in
  List.init n (fun i ->
      if i mod 2 = 0 then Fault.inject f Fault.Heartbeat_loss ~node:(i mod 4)
      else Fault.inject f Fault.Crash_on_respawn ~node:(i mod 4))

let test_inject_deterministic () =
  let sched seed = inject_schedule ~heartbeat_loss:0.4 ~crash_on_respawn:0.3 ~seed 200 in
  (* Bit-for-bit: the same seed yields the same boolean sequence. *)
  check_bool "same seed, same injections" true (sched 13 = sched 13);
  check_bool "different seed, different injections" true (sched 13 <> sched 14);
  (* Rates actually bite, and the counters match the fired decisions. *)
  let f = Fault.make (Fault.spec ~heartbeat_loss:1.0 ~crash_on_respawn:0.0 ~seed:3 ()) in
  for i = 0 to 9 do
    check_bool "rate 1 always fires" true (Fault.inject f Fault.Heartbeat_loss ~node:i);
    check_bool "rate 0 never fires" false (Fault.inject f Fault.Crash_on_respawn ~node:i)
  done;
  let c = Fault.counters f in
  check_int "losses counted" 10 c.Fault.heartbeat_losses;
  check_int "no respawn crashes" 0 c.Fault.respawn_crashes

(* Zero-rate service faults must consume no randomness: a pre-existing
   plan's link-fault schedule is bit-identical whether or not the (new,
   zero) service-fault points are interrogated between messages. *)
let test_inject_zero_rate_inert () =
  let schedule ~interrogate seed =
    let f = Fault.make (fast ~drop:0.3 ~duplicate:0.3 ~corrupt:0.3 ~delay:0.3 ~seed ()) in
    let mb = Mailbox.create () in
    for i = 0 to 49 do
      if interrogate then begin
        check_bool "zero heartbeat_loss" false
          (Fault.inject f Fault.Heartbeat_loss ~node:(i mod 4));
        check_bool "zero crash_on_respawn" false
          (Fault.inject f Fault.Crash_on_respawn ~node:(i mod 4))
      end;
      Fault.send f ~link:(Fault.To_node (i mod 4)) mb (Bytes.make 16 'a')
    done;
    (Fault.counters f, Mailbox.totals mb)
  in
  check_bool "schedule unmoved by zero-rate probes" true
    (schedule ~interrogate:false 7 = schedule ~interrogate:true 7)

let test_timeout_backoff () =
  let s = fast ~seed:0 () in
  let t0 = Fault.timeout_for s ~attempt:0 in
  let t1 = Fault.timeout_for s ~attempt:1 in
  let t9 = Fault.timeout_for s ~attempt:9 in
  check_bool "doubles" true (t1 = 2.0 *. t0);
  check_bool "capped" true (t9 = s.Fault.max_timeout);
  check_bool "huge attempt stays capped" true
    (Fault.timeout_for s ~attempt:1000 = s.Fault.max_timeout)

(* ------------------------------------------------------------------ *)
(* Cluster under faults                                                *)

let cfg nodes = { Cluster.nodes; cores_per_node = 1; flat = false }
let ctx nodes = Triolet.Exec.make ~nodes ~cores_per_node:1 ()

(* A distributed sum whose merge is order-sensitive enough to catch
   double or missing merges: each node contributes its id-tagged
   slice sum. *)
let sum_run ?faults pool nodes =
  let data = Float.Array.init 120 float_of_int in
  let blocks = Partition.blocks ~parts:nodes 120 in
  Cluster.run ~pool ?faults (cfg nodes)
    ~scatter:(fun node ->
      let off, len = blocks.(node) in
      [ Payload.Floats (Float.Array.sub data off len) ])
    ~work:(fun ~node:_ ~pool:_ payload ->
      match payload with
      | [ Payload.Floats f ] -> Float.Array.fold_left ( +. ) 0.0 f
      | _ -> Alcotest.fail "bad payload")
    ~result_codec:Codec.float ~merge:( +. ) ~init:0.0

let expected_sum = 120.0 *. 119.0 /. 2.0

let test_clean_report_unchanged () =
  (* Without faults the report's fault fields are zero and byte/message
     accounting is exactly the legacy protocol's. *)
  with_pool 2 (fun pool ->
      let total, r = sum_run pool 4 in
      Alcotest.(check (float 1e-9)) "sum" expected_sum total;
      check_int "scatter msgs" 4 r.Cluster.scatter_messages;
      check_int "gather msgs" 4 r.Cluster.gather_messages;
      check_int "retries" 0 r.Cluster.retries;
      check_int "redeliveries" 0 r.Cluster.redeliveries;
      check_int "corrupt drops" 0 r.Cluster.corrupt_drops;
      check_int "crashed nodes" 0 r.Cluster.crashed_nodes;
      check_int "faults" 0 r.Cluster.faults_injected;
      check_int "recovery" 0 r.Cluster.recovery_ns)

let test_crash_each_phase_recovers () =
  with_pool 2 (fun pool ->
      List.iter
        (fun phase ->
          let faults = fast ~seed:1 ~crash:(1, phase) () in
          let total, r = sum_run ~faults pool 4 in
          Alcotest.(check (float 1e-9)) "sum survives crash" expected_sum total;
          check_int "one crash" 1 r.Cluster.crashed_nodes;
          check_bool "retried" true (r.Cluster.retries > 0))
        [ Fault.Before_work; Fault.During_work; Fault.After_work ])

let test_duplicate_replies_deduped () =
  with_pool 2 (fun pool ->
      let faults =
        fast ~seed:2
          ~faults_of:(function
            | Fault.From_node _ -> { Fault.no_faults with duplicate = 1.0 }
            | Fault.To_node _ -> Fault.no_faults)
          ()
      in
      let total, r = sum_run ~faults pool 4 in
      Alcotest.(check (float 1e-9)) "merged at most once" expected_sum total;
      check_bool "redeliveries counted" true (r.Cluster.redeliveries >= 4))

let test_straggler_recovered () =
  with_pool 2 (fun pool ->
      let faults = fast ~seed:3 ~stragglers:[ 2 ] () in
      let total, r = sum_run ~faults pool 4 in
      Alcotest.(check (float 1e-9)) "sum" expected_sum total;
      check_bool "straggler forced a retry" true (r.Cluster.retries > 0);
      check_bool "late reply discarded" true (r.Cluster.redeliveries > 0))

let test_corrupt_link_detected () =
  with_pool 2 (fun pool ->
      (* every reply corrupted on its first delivery would loop forever;
         corrupt only node 1's link and let retries win eventually *)
      let faults =
        fast ~seed:4
          ~faults_of:(function
            | Fault.From_node 1 -> { Fault.no_faults with corrupt = 0.7 }
            | _ -> Fault.no_faults)
          ()
      in
      let total, r = sum_run ~faults pool 4 in
      Alcotest.(check (float 1e-9)) "sum" expected_sum total;
      check_bool "corruption detected" true (r.Cluster.corrupt_drops > 0);
      check_bool "retried" true (r.Cluster.retries > 0))

let test_recovery_exhausted () =
  with_pool 2 (fun pool ->
      (* node 1 never delivers anything: attempts must run out *)
      let faults =
        fast ~seed:5 ~max_attempts:3
          ~faults_of:(function
            | Fault.To_node 1 -> { Fault.no_faults with drop = 1.0 }
            | _ -> Fault.no_faults)
          ()
      in
      check_bool "recovery exhausted raises" true
        (match sum_run ~faults pool 4 with
        | _ -> false
        | exception Cluster.Recovery_exhausted { worker = 1; attempts = 3 } ->
            true))

let test_work_exception_reraised () =
  with_pool 2 (fun pool ->
      (* a deterministic exception in [work] survives retries and is
         re-raised once recovery gives up *)
      let faults = fast ~seed:6 ~max_attempts:2 () in
      check_bool "work exception re-raised" true
        (match
           Cluster.run ~pool ~faults (cfg 3)
             ~scatter:(fun _ -> Payload.empty)
             ~work:(fun ~node ~pool:_ _ ->
               if node = 1 then failwith "boom" else node)
             ~result_codec:Codec.int ~merge:( + ) ~init:0
         with
        | _ -> false
        | exception Failure msg -> msg = "boom"))

let test_merge_worker_order_under_faults () =
  with_pool 2 (fun pool ->
      (* a non-commutative merge: recovery must still fold worker 0
         first even though worker 1 crashed and resolved last *)
      let faults = fast ~seed:7 ~crash:(1, Fault.During_work) () in
      let order, _ =
        Cluster.run ~pool ~faults (cfg 4)
          ~scatter:(fun node -> [ Payload.Ints [| node |] ])
          ~work:(fun ~node:_ ~pool:_ payload ->
            match payload with
            | [ Payload.Ints a ] -> a.(0)
            | _ -> -1)
          ~result_codec:Codec.int
          ~merge:(fun acc v -> acc @ [ v ])
          ~init:[]
      in
      Alcotest.(check (list int)) "worker order" [ 0; 1; 2; 3 ] order)

let deterministic_part (r : Cluster.report) =
  ( ( r.Cluster.scatter_bytes,
      r.Cluster.gather_bytes,
      r.Cluster.scatter_messages,
      r.Cluster.gather_messages,
      r.Cluster.max_message_bytes ),
    ( r.Cluster.retries,
      r.Cluster.redeliveries,
      r.Cluster.corrupt_drops,
      r.Cluster.crashed_nodes,
      r.Cluster.faults_injected ) )

let test_seeded_run_reproducible () =
  (* Same seed: bit-for-bit identical result and identical fault
     schedule (every deterministic report field).  Different seed:
     still the correct sum. *)
  with_pool 2 (fun pool ->
      let spec =
        fast ~seed:11 ~drop:0.15 ~duplicate:0.15 ~corrupt:0.15 ~delay:0.15
          ~crash:(2, Fault.During_work) ()
      in
      let t1, r1 = sum_run ~faults:spec pool 4 in
      let t2, r2 = sum_run ~faults:spec pool 4 in
      check_bool "results bit-for-bit equal" true (t1 = t2);
      check_bool "fault schedule reproduced" true
        (deterministic_part r1 = deterministic_part r2);
      check_bool "still correct" true (t1 = expected_sum);
      check_bool "nonzero recovery activity" true (r1.Cluster.retries > 0))

let test_encode_once_under_drops () =
  (* The retry loop re-sends cached bytes: even when injected drops
     force several delivery attempts per node, each (node, slice) pair
     is serialized exactly once.  Re-encoding inside the retry loop was
     a real regression — this pins the hoisted serialization. *)
  with_pool 2 (fun pool ->
      let faults =
        fast ~seed:21
          ~faults_of:(function
            | Fault.To_node _ -> { Fault.no_faults with drop = 0.5 }
            | Fault.From_node _ -> Fault.no_faults)
          ()
      in
      Stats.reset_encode_count ();
      let total, r = sum_run ~faults pool 4 in
      Alcotest.(check (float 1e-9)) "sum survives the drops" expected_sum total;
      check_bool "drops actually forced retries" true (r.Cluster.retries > 0);
      check_int "each (node, slice) encoded exactly once" 4
        (Stats.encode_count ()))

let prop_faulty_sum_correct =
  qtest ~count:15 "random seeds: faulty run = fault-free result"
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      with_pool 2 (fun pool ->
          let faults =
            fast ~seed ~drop:0.1 ~duplicate:0.1 ~corrupt:0.1 ~delay:0.1 ()
          in
          let total, _ = sum_run ~faults pool 3 in
          total = expected_sum))

(* ------------------------------------------------------------------ *)
(* Kernels under the acceptance scenario: a single-node crash plus     *)
(* corruption and drops on every link, fixed seed                      *)

module D = Triolet_kernels.Dataset

let acceptance_spec seed =
  Fault.spec ~drop:0.05 ~corrupt:0.05 ~crash:(1, Fault.During_work)
    ~base_timeout:0.002 ~max_timeout:0.02 ~seed ()

let kernel_cases =
  [
    ( "mri-q",
      fun () ->
        let d = D.mriq ~seed:101 ~samples:48 ~voxels:120 in
        let reference = Triolet_kernels.Mriq.run_triolet d in
        fun () ->
          Triolet_kernels.Mriq.agrees ~eps:0.0 reference
            (Triolet_kernels.Mriq.run_triolet d) );
    ( "sgemm",
      fun () ->
        let a, b = D.sgemm_matrices ~seed:102 ~m:18 ~k:12 ~n:14 in
        let reference = Triolet_kernels.Sgemm.run_triolet a b in
        fun () ->
          Triolet_kernels.Sgemm.agrees ~eps:0.0 reference
            (Triolet_kernels.Sgemm.run_triolet a b) );
    ( "tpacf",
      fun () ->
        let d = D.tpacf ~seed:103 ~points:32 ~random_sets:3 in
        let reference = Triolet_kernels.Tpacf.run_triolet ~bins:12 d in
        fun () ->
          Triolet_kernels.Tpacf.agrees reference
            (Triolet_kernels.Tpacf.run_triolet ~bins:12 d) );
    (* cutcp accumulates float histograms as chunks complete on the
       work-stealing pool, so even fault-free runs differ in the last
       ulp: compare at the kernel's standard tolerance. *)
    ( "cutcp",
      fun () ->
        let d =
          D.cutcp ~seed:104 ~atoms:32 ~nx:8 ~ny:8 ~nz:8 ~spacing:0.5
            ~cutoff:1.5
        in
        let reference = Triolet_kernels.Cutcp.run_triolet d in
        fun () ->
          Triolet_kernels.Cutcp.agrees ~eps:1e-9 reference
            (Triolet_kernels.Cutcp.run_triolet d) );
  ]

let test_kernels_survive_fault_matrix () =
  Triolet.Exec.with_context (ctx 3) (fun () ->
      List.iter
        (fun (name, setup) ->
          let check = setup () in
          let ok, delta =
            Stats.measure (fun () ->
                Triolet.Exec.with_context
                  (Triolet.Exec.make ~faults:(Some (acceptance_spec 42)) ())
                  check)
          in
          check_bool (name ^ " equals fault-free result") true ok;
          check_bool (name ^ " recovered from the crash") true
            (delta.Stats.crashed_nodes > 0);
          check_bool (name ^ " shows retries") true (delta.Stats.retries > 0))
        kernel_cases)

let test_kernels_reproducible_under_seed () =
  Triolet.Exec.with_context (ctx 3) (fun () ->
      let name, setup = List.hd kernel_cases in
      ignore name;
      let check = setup () in
      let run () =
        Stats.measure (fun () ->
            Triolet.Exec.with_context
              (Triolet.Exec.make ~faults:(Some (acceptance_spec 7)) ())
              check)
      in
      let ok1, d1 = run () in
      let ok2, d2 = run () in
      check_bool "both correct" true (ok1 && ok2);
      check_int "same retries" d1.Stats.retries d2.Stats.retries;
      check_int "same redeliveries" d1.Stats.redeliveries d2.Stats.redeliveries;
      check_int "same corrupt drops" d1.Stats.corrupt_drops
        d2.Stats.corrupt_drops;
      check_int "same faults" d1.Stats.faults_injected d2.Stats.faults_injected;
      check_int "same crashes" d1.Stats.crashed_nodes d2.Stats.crashed_nodes)

let () =
  Alcotest.run "fault"
    [
      ( "codec",
        [
          Alcotest.test_case "checksummed roundtrip" `Quick
            test_checksummed_roundtrip;
          Alcotest.test_case "checksummed detects flip" `Quick
            test_checksummed_detects_flip;
          Alcotest.test_case "of_bytes rejects trailing" `Quick
            test_of_bytes_rejects_trailing;
          prop_checksummed_never_decodes_corruption;
          prop_plain_codec_roundtrip_still_exact;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "recv_timeout empty" `Quick test_recv_timeout_empty;
          Alcotest.test_case "recv_timeout message" `Quick
            test_recv_timeout_message;
          Alcotest.test_case "recv_timeout cross-domain" `Quick
            test_recv_timeout_cross_domain;
          Alcotest.test_case "close wakes blocked recv" `Quick
            test_close_wakes_blocked_recv;
          Alcotest.test_case "close semantics" `Quick test_close_semantics;
          Alcotest.test_case "delayed promoted by timeout" `Quick
            test_delayed_promoted_by_timeout;
        ] );
      ( "injector",
        [
          Alcotest.test_case "deterministic schedule" `Quick
            test_injector_deterministic;
          Alcotest.test_case "service injection deterministic" `Quick
            test_inject_deterministic;
          Alcotest.test_case "zero-rate service faults inert" `Quick
            test_inject_zero_rate_inert;
          Alcotest.test_case "timeout backoff" `Quick test_timeout_backoff;
        ] );
      ( "cluster-recovery",
        [
          Alcotest.test_case "clean report unchanged" `Quick
            test_clean_report_unchanged;
          Alcotest.test_case "crash each phase" `Quick
            test_crash_each_phase_recovers;
          Alcotest.test_case "duplicates deduped" `Quick
            test_duplicate_replies_deduped;
          Alcotest.test_case "straggler" `Quick test_straggler_recovered;
          Alcotest.test_case "corrupt link" `Quick test_corrupt_link_detected;
          Alcotest.test_case "recovery exhausted" `Quick test_recovery_exhausted;
          Alcotest.test_case "work exception re-raised" `Quick
            test_work_exception_reraised;
          Alcotest.test_case "merge in worker order" `Quick
            test_merge_worker_order_under_faults;
          Alcotest.test_case "seeded run reproducible" `Quick
            test_seeded_run_reproducible;
          Alcotest.test_case "encode once under drops" `Quick
            test_encode_once_under_drops;
          prop_faulty_sum_correct;
        ] );
      ( "kernels-under-faults",
        [
          Alcotest.test_case "fault matrix correctness" `Quick
            test_kernels_survive_fault_matrix;
          Alcotest.test_case "seeded reproducibility" `Quick
            test_kernels_reproducible_under_seed;
        ] );
    ]
