(* Observability-layer tests: the monotonic clock, span recording
   (nesting, ordering, wraparound, drops), Chrome-trace JSON output
   round-tripping through the parser, the JSON printer/parser itself,
   Stats snapshot/reset coherence under concurrent workers, and the
   bench-compare regression gate. *)

module Obs = Triolet_obs.Obs
module Json = Triolet_obs.Json
module Clock = Triolet_runtime.Clock
module Stats = Triolet_runtime.Stats
module Pool = Triolet_runtime.Pool
module Cluster = Triolet_runtime.Cluster
module Fault = Triolet_runtime.Fault
module BC = Triolet_harness.Bench_compare

(* This suite spawns multi-domain pools and then runs ambient-context
   distributed pipelines, which the process backend's fork requirement
   forbids; ignore TRIOLET_BACKEND so the suite behaves identically
   under it (test_transport covers the process backend). *)
let () = Unix.putenv "TRIOLET_BACKEND" ""
let () = Pool.set_default_width 2

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Fresh tracing state with a known ring capacity; always disabled on
   the way out so later tests start quiet. *)
let with_tracing ?(capacity = 4096) f =
  Obs.set_ring_capacity capacity;
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:(fun () -> Obs.disable ()) f

(* ------------------------------------------------------------------ *)
(* Clocks                                                              *)

let test_monotonic_nondecreasing () =
  let prev = ref (Clock.monotonic_ns ()) in
  for _ = 1 to 10_000 do
    let t = Clock.monotonic_ns () in
    if t < !prev then Alcotest.fail "monotonic clock went backwards";
    prev := t
  done;
  (* the obs stub reads the same clock *)
  let a = Clock.monotonic_ns () in
  let b = Obs.monotonic_ns () in
  let c = Clock.monotonic_ns () in
  check_bool "obs clock agrees with runtime clock" true (a <= b && b <= c)

let test_duration_nonnegative () =
  let r, dt = Clock.duration (fun () -> 42) in
  check_int "result passthrough" 42 r;
  check_bool "duration >= 0" true (dt >= 0.0)

(* ------------------------------------------------------------------ *)
(* Spans: values, nesting, ordering, attrs                             *)

let test_span_disabled_passthrough () =
  Obs.reset ();
  (* disabled: still runs the thunk, records nothing *)
  check_int "value" 7 (Obs.span ~name:"off" (fun () -> 7));
  check_int "no events" 0 (List.length (Obs.events ()))

let test_span_nesting_and_order () =
  with_tracing (fun () ->
      let v =
        Obs.span ~name:"outer" (fun () ->
            ignore (Obs.span ~name:"inner1" (fun () -> 1));
            Obs.span ~name:"inner2" ~attrs:[ ("k", "v") ] (fun () -> 2))
      in
      check_int "value through nested spans" 2 v;
      let evs = Obs.events () in
      check_int "three events" 3 (List.length evs);
      let find n = List.find (fun e -> e.Obs.ev_name = n) evs in
      let outer = find "outer"
      and i1 = find "inner1"
      and i2 = find "inner2" in
      check_int "outer at depth 0" 0 outer.Obs.ev_depth;
      check_int "inner1 at depth 1" 1 i1.Obs.ev_depth;
      check_int "inner2 at depth 1" 1 i2.Obs.ev_depth;
      check_bool "events sorted by start" true
        (List.for_all2
           (fun a b -> a.Obs.ev_start_ns <= b.Obs.ev_start_ns)
           [ outer; i1 ] [ i1; i2 ]);
      let ends e = e.Obs.ev_start_ns + e.Obs.ev_dur_ns in
      check_bool "inner1 inside outer" true
        (i1.Obs.ev_start_ns >= outer.Obs.ev_start_ns && ends i1 <= ends outer);
      check_bool "inner2 inside outer" true
        (i2.Obs.ev_start_ns >= outer.Obs.ev_start_ns && ends i2 <= ends outer);
      check_bool "inner1 before inner2" true (ends i1 <= i2.Obs.ev_start_ns);
      check_bool "attrs kept" true (i2.Obs.ev_attrs = [ ("k", "v") ]))

let test_span_exception_safe () =
  with_tracing (fun () ->
      (match Obs.span ~name:"boom" (fun () -> failwith "x") with
      | () -> Alcotest.fail "expected exception"
      | exception Failure _ -> ());
      (* the span closed and depth unwound: a sibling records at 0 *)
      ignore (Obs.span ~name:"after" (fun () -> ()));
      let after =
        List.find (fun e -> e.Obs.ev_name = "after") (Obs.events ())
      in
      check_int "depth unwound after raise" 0 after.Obs.ev_depth;
      check_bool "raising span still recorded" true
        (List.exists (fun e -> e.Obs.ev_name = "boom") (Obs.events ())))

let test_instants () =
  with_tracing (fun () ->
      Obs.instant ~name:"mark" ~attrs:[ ("n", "1") ] ();
      let e = List.find (fun e -> e.Obs.ev_name = "mark") (Obs.events ()) in
      check_int "instants have zero duration" 0 e.Obs.ev_dur_ns)

let test_multi_domain_events () =
  with_tracing (fun () ->
      let worker tag () =
        ignore (Obs.span ~name:("dom." ^ tag) (fun () -> Unix.sleepf 0.001))
      in
      let d1 = Domain.spawn (worker "a") and d2 = Domain.spawn (worker "b") in
      Domain.join d1;
      Domain.join d2;
      ignore (Obs.span ~name:"dom.main" (fun () -> ()));
      let evs = Obs.events () in
      let tid n = (List.find (fun e -> e.Obs.ev_name = n) evs).Obs.ev_tid in
      check_bool "distinct recording domains get distinct tids" true
        (tid "dom.a" <> tid "dom.b" && tid "dom.a" <> tid "dom.main"))

(* ------------------------------------------------------------------ *)
(* Ring wraparound                                                     *)

let test_wraparound_drops_oldest () =
  with_tracing ~capacity:16 (fun () ->
      for i = 0 to 99 do
        ignore
          (Obs.span ~name:"w" ~attrs:[ ("i", string_of_int i) ] (fun () -> i))
      done;
      let evs = Obs.events () in
      check_int "ring keeps capacity events" 16 (List.length evs);
      check_int "drop counter accounts for the rest" 84 (Obs.dropped_spans ());
      let indices =
        List.map (fun e -> int_of_string (List.assoc "i" e.Obs.ev_attrs)) evs
      in
      check_bool "oldest events dropped, newest retained" true
        (List.sort compare indices = List.init 16 (fun k -> 84 + k));
      (* aggregates are not subject to wraparound *)
      let _, a = List.find (fun (n, _) -> n = "w") (Obs.aggregates ()) in
      check_int "aggregate count complete despite drops" 100 a.Obs.agg_count;
      check_bool "aggregate total covers max" true
        (a.Obs.agg_total_ns >= a.Obs.agg_max_ns))

(* ------------------------------------------------------------------ *)
(* Trace JSON round-trips through the parser                           *)

let test_trace_json_roundtrip () =
  with_tracing (fun () ->
      ignore
        (Obs.span ~name:"phase \"quoted\"" (fun () ->
             Obs.instant ~name:"tick" ();
             ignore (Obs.span ~name:"child" (fun () -> 0))));
      let path = Filename.temp_file "triolet_trace" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Obs.write_trace path;
          let doc = Json.of_file path in
          let events =
            match Json.member "traceEvents" doc with
            | Some (Json.Arr _ as a) -> Json.to_list a
            | _ -> Alcotest.fail "traceEvents missing"
          in
          check_int "one JSON event per recorded event"
            (List.length (Obs.events ()))
            (List.length events);
          List.iter
            (fun e ->
              let str f = Option.bind (Json.member f e) Json.to_string_opt in
              let num f = Option.bind (Json.member f e) Json.to_float_opt in
              check_bool "event has a name" true (str "name" <> None);
              (match str "ph" with
              | Some ("X" | "i") -> ()
              | _ -> Alcotest.fail "unexpected phase type");
              check_bool "timestamps non-negative" true
                (match num "ts" with Some t -> t >= 0.0 | None -> false))
            events;
          check_bool "names survive escaping" true
            (List.exists
               (fun e ->
                 Option.bind (Json.member "name" e) Json.to_string_opt
                 = Some "phase \"quoted\"")
               events)))

(* ------------------------------------------------------------------ *)
(* JSON printer/parser                                                 *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd\te\ru\x01f");
        ("n", Json.Num (-1.5e3));
        ("i", Json.Num 42.0);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("a", Json.Arr [ Json.Num 1.0; Json.Arr []; Json.Obj [] ]);
      ]
  in
  Alcotest.(check bool)
    "print/parse identity" true
    (Json.of_string (Json.to_string v) = v)

let test_json_parses_standard_forms () =
  check_bool "null" true (Json.of_string " null " = Json.Null);
  check_bool "escapes" true
    (Json.of_string {|"A\né"|} = Json.Str "A\n\xc3\xa9");
  check_bool "surrogate pair" true
    (Json.of_string {|"😀"|} = Json.Str "\xf0\x9f\x98\x80");
  check_bool "nested" true
    (Json.of_string {|{"a":[{"b":-1.5e3},true]}|}
    = Json.Obj
        [ ("a", Json.Arr [ Json.Obj [ ("b", Json.Num (-1500.0)) ]; Json.Bool true ]) ])

let test_json_rejects_malformed () =
  let rejects s =
    match Json.of_string s with
    | _ -> Alcotest.fail ("parsed malformed input: " ^ s)
    | exception Json.Parse_error _ -> ()
  in
  rejects "[1, 2,]";
  rejects "{\"a\":1";
  rejects "\"unterminated";
  rejects "nul";
  rejects "[1] trailing";
  rejects ""

(* ------------------------------------------------------------------ *)
(* Stats coherence under concurrent workers                            *)

let nonneg (s : Stats.snapshot) =
  s.Stats.messages >= 0 && s.Stats.bytes_sent >= 0 && s.Stats.chunks_run >= 0
  && s.Stats.steals >= 0 && s.Stats.splits >= 0 && s.Stats.failed_steals >= 0
  && s.Stats.tasks_spawned >= 0 && s.Stats.recovery_ns >= 0
  && Array.for_all
       (fun w ->
         w.Stats.w_chunks >= 0 && w.Stats.w_splits >= 0
         && w.Stats.w_steals >= 0 && w.Stats.w_failed_steals >= 0
         && w.Stats.w_busy_ns >= 0)
       s.Stats.per_worker

let test_stats_hammer () =
  let p = Pool.create ~workers:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let stop = Atomic.make false in
      let bad = Atomic.make 0 in
      (* one domain hammers reset+snapshot while the pool records *)
      let checker =
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Stats.reset ();
              if not (nonneg (Stats.snapshot ())) then Atomic.incr bad
            done)
      in
      for _ = 1 to 50 do
        let sum off len =
          let acc = ref 0 in
          for i = off to off + len - 1 do
            acc := !acc + i
          done;
          !acc
        in
        (* measure must stay non-negative even with resets in flight *)
        let total, delta =
          Stats.measure (fun () ->
              Pool.parallel_range p ~lo:0 ~hi:20_000 ~f:sum ~merge:( + )
                ~init:0 ())
        in
        check_int "work correct under hammering" (20_000 * 19_999 / 2) total;
        if not (nonneg delta) then Atomic.incr bad
      done;
      Atomic.set stop true;
      Domain.join checker;
      check_int "no negative snapshot ever observed" 0 (Atomic.get bad))

(* ------------------------------------------------------------------ *)
(* Recovery timing: monotonic, hence non-negative                      *)

let test_recovery_ns_nonnegative () =
  Triolet.Exec.set_ambient (Triolet.Exec.make ~nodes:(3) ~cores_per_node:(1) ());
  let n = 3000 in
  let xs = Float.Array.init n float_of_int in
  let spec =
    Fault.spec ~seed:7
      ~crash:(1, Fault.During_work)
      ~max_attempts:8 ~base_timeout:0.002 ~max_timeout:0.02 ()
  in
  Stats.reset ();
  let sum =
    Triolet.Exec.with_context (Triolet.Exec.make ~faults:(Some spec) ())
      (fun () ->
        Triolet.Iter.sum (Triolet.Iter.par (Triolet.Iter.of_floatarray xs)))
  in
  let s = Stats.snapshot () in
  Alcotest.(check (float 0.0))
    "correct result despite crash"
    (float_of_int (n * (n - 1) / 2))
    sum;
  check_bool "crash forced a retry" true (s.Stats.retries > 0);
  check_bool "recovery_ns non-negative" true (s.Stats.recovery_ns >= 0);
  check_bool "recovery took measurable time" true (s.Stats.recovery_ns > 0)

(* ------------------------------------------------------------------ *)
(* Bench-compare regression gate                                       *)

let test_bench_compare_slowdown () =
  let old_rows =
    [ { BC.name = "a"; ns_per_run = 100.0 };
      { BC.name = "b"; ns_per_run = 200.0 } ]
  in
  let scaled k =
    List.map (fun r -> { r with BC.ns_per_run = r.BC.ns_per_run *. k }) old_rows
  in
  let slowdown = BC.compare_rows old_rows (scaled 2.0) in
  check_int "2x slowdown flags every row" 2
    (List.length slowdown.BC.regressions);
  check_int "identical rows pass" 0
    (List.length (BC.compare_rows old_rows old_rows).BC.regressions);
  check_int "speedups are not regressions" 0
    (List.length (BC.compare_rows old_rows (scaled 0.5)).BC.regressions);
  check_int "exactly-at-threshold passes" 0
    (List.length (BC.compare_rows old_rows (scaled 1.15)).BC.regressions);
  check_int "custom threshold applies" 2
    (List.length
       (BC.compare_rows ~threshold:0.05 old_rows (scaled 1.10)).BC.regressions)

(* Rows with no usable baseline are "added", never regressions and
   never a failure: a brand-new bench family's first run under
   [bench --compare] must pass while still being visible in the
   report.  A non-positive baseline value (a zeroed or botched old
   row) counts as no-baseline too — no ratio can be formed from it. *)
let test_bench_compare_added_rows () =
  let old_rows =
    [ { BC.name = "a"; ns_per_run = 100.0 };
      { BC.name = "zeroed"; ns_per_run = 0.0 };
      { BC.name = "negative"; ns_per_run = -5.0 } ]
  in
  let new_rows =
    [ { BC.name = "a"; ns_per_run = 100.0 };
      { BC.name = "zeroed"; ns_per_run = 50.0 };
      { BC.name = "negative"; ns_per_run = 50.0 };
      { BC.name = "brand-new"; ns_per_run = 1.0 } ]
  in
  let r = BC.compare_rows old_rows new_rows in
  check_int "only the usable baseline row is compared" 1
    (List.length r.BC.deltas);
  check_int "added rows are never regressions" 0
    (List.length r.BC.regressions);
  Alcotest.(check (list string))
    "absent and non-positive baselines all land in only_new"
    [ "zeroed"; "negative"; "brand-new" ]
    r.BC.only_new;
  check_int "nothing dropped from old" 0 (List.length r.BC.only_old)

let test_bench_compare_json_shapes () =
  let family =
    {|{"family":"dot","wall_ns":1,"rows":[{"name":"a","ns_per_run":100.0},{"name":"c","ns_per_run":5.0}]}|}
  in
  let legacy = {|[{"name":"a","ns_per_run":250.0},{"name":"d","ns_per_run":1}]|} in
  let old_rows = BC.rows_of_json (Json.of_string family) in
  let new_rows = BC.rows_of_json (Json.of_string legacy) in
  check_int "family-file rows parsed" 2 (List.length old_rows);
  check_int "legacy-array rows parsed" 2 (List.length new_rows);
  let r = BC.compare_rows old_rows new_rows in
  check_int "matched rows compared" 1 (List.length r.BC.deltas);
  check_int "2.5x slowdown caught across formats" 1
    (List.length r.BC.regressions);
  check_bool "unmatched rows reported, not regressions" true
    (r.BC.only_old = [ "c" ] && r.BC.only_new = [ "d" ])

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "monotonic never decreases" `Quick
            test_monotonic_nondecreasing;
          Alcotest.test_case "duration non-negative" `Quick
            test_duration_nonnegative;
        ] );
      ( "spans",
        [
          Alcotest.test_case "disabled passthrough" `Quick
            test_span_disabled_passthrough;
          Alcotest.test_case "nesting and ordering" `Quick
            test_span_nesting_and_order;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "instants" `Quick test_instants;
          Alcotest.test_case "multi-domain tids" `Quick test_multi_domain_events;
          Alcotest.test_case "wraparound drops oldest" `Quick
            test_wraparound_drops_oldest;
        ] );
      ( "trace-json",
        [
          Alcotest.test_case "trace round-trips through parser" `Quick
            test_trace_json_roundtrip;
        ] );
      ( "json",
        [
          Alcotest.test_case "print/parse roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "standard forms" `Quick
            test_json_parses_standard_forms;
          Alcotest.test_case "malformed input rejected" `Quick
            test_json_rejects_malformed;
        ] );
      ( "stats",
        [
          Alcotest.test_case "snapshot/reset hammer" `Quick test_stats_hammer;
          Alcotest.test_case "recovery_ns non-negative" `Quick
            test_recovery_ns_nonnegative;
        ] );
      ( "bench-compare",
        [
          Alcotest.test_case "synthetic slowdowns gate" `Quick
            test_bench_compare_slowdown;
          Alcotest.test_case "added rows are not failures" `Quick
            test_bench_compare_added_rows;
          Alcotest.test_case "both file shapes" `Quick
            test_bench_compare_json_shapes;
        ] );
    ]
