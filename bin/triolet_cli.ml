(* triolet: command-line driver for the reproduction.

   Subcommands regenerate individual paper figures, run the kernel
   agreement checks, and demo the distributed runtime with byte
   accounting. *)

open Cmdliner
module Figures = Triolet_harness.Figures
module Stats = Triolet_runtime.Stats
module Cluster = Triolet_runtime.Cluster
module Fault = Triolet_runtime.Fault
module Clock = Triolet_runtime.Clock
module Obs = Triolet_obs.Obs

let backend_arg =
  let doc =
    "Cluster transport backend: $(b,inprocess) runs nodes as mailbox \
     channels inside this process; $(b,process) forks one OS process per \
     node and moves every frame over a socketpair.  Forking must happen \
     before any worker domain is spawned, so $(b,process) runs the \
     parent single-threaded."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("inprocess", Cluster.Inprocess); ("process", Cluster.Process) ])
        Cluster.Inprocess
    & info [ "backend" ] ~docv:"BACKEND" ~doc)

(* Select the transport before anything touches the default pool: the
   environment variable keeps [Pool.default] one worker wide in the
   parent (forked children still build full-width pools), and the
   ambient context routes the skeletons to the chosen transport. *)
let apply_backend backend =
  (match backend with
  | Cluster.Process -> Unix.putenv "TRIOLET_BACKEND" "process"
  | Cluster.Inprocess | Cluster.Flat -> ());
  Triolet.Exec.set_ambient
    { (Triolet.Exec.current ()) with Triolet.Exec.backend }

let backend_name = function
  | Cluster.Inprocess -> "in-process"
  | Cluster.Process -> "multi-process"
  | Cluster.Flat -> "flat"

let verbose_arg =
  let doc = "Enable debug logging of the runtime (chunks, messages)." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let scale_arg =
  let doc =
    "Scale factor for the measured (Figure 3 / calibration) instances. \
     1.0 takes a few CPU-minutes; 0.5 is a quick look."
  in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc)

let measured_arg =
  let doc =
    "Calibrate the simulator with the efficiency ratios measured on this \
     machine (Figure 3 styles) instead of the paper's reported ratios."
  in
  Arg.(value & flag & info [ "measured" ] ~doc)

let tsv_arg =
  let doc = "Also write the figure's speedup series as TSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "tsv" ] ~docv:"FILE" ~doc)

let write_tsv tsv series =
  match tsv with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Figures.series_to_tsv series);
      close_out oc;
      Printf.printf "wrote %s\n" path

let with_ctx scale measured f =
  let ctx = Figures.make_context ~scale ~measured_efficiency:measured () in
  f ctx;
  0

let fig_cmd =
  let figure =
    Arg.(
      required
      & pos 0 (some (enum [ ("1", `F1); ("3", `F3); ("4", `F4); ("5", `F5);
                            ("7", `F7); ("8", `F8) ])) None
      & info [] ~docv:"FIGURE" ~doc:"Figure number: 1, 3, 4, 5, 7 or 8.")
  in
  let run figure scale measured tsv =
    match figure with
    | `F1 ->
        Figures.fig1 ();
        0
    | `F3 -> with_ctx scale measured (fun ctx -> ignore (Figures.fig3 ctx))
    | `F4 ->
        with_ctx scale measured (fun ctx -> write_tsv tsv (Figures.fig4 ctx))
    | `F5 ->
        with_ctx scale measured (fun ctx -> write_tsv tsv (Figures.fig5 ctx))
    | `F7 ->
        with_ctx scale measured (fun ctx -> write_tsv tsv (Figures.fig7 ctx))
    | `F8 ->
        with_ctx scale measured (fun ctx -> write_tsv tsv (Figures.fig8 ctx))
  in
  Cmd.v
    (Cmd.info "fig" ~doc:"Regenerate one figure of the paper's evaluation")
    Term.(const run $ figure $ scale_arg $ measured_arg $ tsv_arg)

let summary_cmd =
  Cmd.v
    (Cmd.info "summary"
       ~doc:"Headline claims: Triolet vs C and vs sequential C at 128 cores")
    Term.(
      const (fun scale measured ->
          with_ctx scale measured (fun ctx -> ignore (Figures.summary ctx)))
      $ scale_arg $ measured_arg)

let ablation_cmd =
  let which =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("gc", `Gc); ("slicing", `Slicing); ("twolevel", `Twolevel);
                  ("scheduling", `Scheduling); ("gather", `Gather) ]))
          None
      & info [] ~docv:"NAME"
          ~doc:"One of: gc, slicing, twolevel, scheduling, gather.")
  in
  let run which scale measured =
    with_ctx scale measured (fun ctx ->
        match which with
        | `Gc -> ignore (Figures.ablation_gc ctx)
        | `Slicing -> Figures.ablation_slicing ctx
        | `Twolevel -> Figures.ablation_twolevel ctx
        | `Scheduling -> Figures.ablation_scheduling ctx
        | `Gather -> Figures.ablation_gather ctx)
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Run one design-choice ablation")
    Term.(const run $ which $ scale_arg $ measured_arg)

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every figure, the summary and all ablations")
    Term.(
      const (fun scale measured ->
          ignore (Figures.all ~scale ~measured_efficiency:measured ());
          0)
      $ scale_arg $ measured_arg)

(* Single-configuration simulation with a phase breakdown. *)
let sim_cmd =
  let kernel =
    Arg.(
      required
      & opt (some (enum [ ("mri-q", "mri-q"); ("sgemm", "sgemm");
                          ("tpacf", "tpacf"); ("cutcp", "cutcp") ])) None
      & info [ "kernel" ] ~docv:"K" ~doc:"One of: mri-q, sgemm, tpacf, cutcp.")
  in
  let profile =
    Arg.(
      value
      & opt (enum [ ("triolet", `Triolet); ("eden", `Eden); ("cmpi", `Cmpi) ])
          `Triolet
      & info [ "profile" ] ~docv:"P" ~doc:"triolet, eden or cmpi.")
  in
  let nodes = Arg.(value & opt int 8 & info [ "nodes" ] ~doc:"Cluster nodes.") in
  let cores =
    Arg.(value & opt int 16 & info [ "cores" ] ~doc:"Cores per node.")
  in
  let run kernel profile nodes cores scale measured =
    let module Sched = Triolet_sim.Sched_sim in
    let module App = Triolet_sim.App_model in
    let module Table = Triolet_harness.Table in
    let ctx = Figures.make_context ~scale ~measured_efficiency:measured () in
    let app = Figures.model_of ctx kernel in
    let p =
      match profile with
      | `Triolet -> List.nth (Figures.profiles ctx) 1
      | `Eden -> List.nth (Figures.profiles ctx) 2
      | `Cmpi -> List.nth (Figures.profiles ctx) 0
    in
    let m = { Sched.nodes; cores_per_node = cores } in
    (match Sched.run app p m with
    | Sched.Failed msg -> Printf.printf "FAILED: %s\n" msg
    | Sched.Completed b ->
        let seq = App.sequential_time app in
        Printf.printf "%s on %s, %d nodes x %d cores\n" kernel
          p.Triolet_sim.Profile.name nodes cores;
        Table.print
          [
            [ "phase"; "value" ];
            [ "sequential reference"; Table.seconds seq ];
            [ "total"; Table.seconds b.Sched.total ];
            [ "speedup"; Table.f1 (seq /. b.Sched.total) ];
            [ "setup (e.g. transpose)"; Table.seconds b.Sched.setup_time ];
            [ "last input delivered"; Table.seconds b.Sched.scatter_done ];
            [ "last worker finished"; Table.seconds b.Sched.compute_done ];
            [ "bytes scattered"; Table.bytes b.Sched.bytes_scattered ];
            [ "bytes gathered"; Table.bytes b.Sched.bytes_gathered ];
            [ "time attributed to GC"; Table.seconds b.Sched.gc_time ];
          ]);
    0
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Simulate one kernel/profile/machine configuration with a phase breakdown")
    Term.(const run $ kernel $ profile $ nodes $ cores $ scale_arg $ measured_arg)

(* Kernel agreement self-check: the three styles must agree. *)
let verify_cmd =
  let run () =
    let times = Triolet_harness.Calibrate.run_fig3 ~scale:0.25 () in
    List.iter
      (fun t ->
        Printf.printf "%-6s styles agree (C %s, Triolet %s, Eden %s)\n"
          t.Triolet_harness.Calibrate.kernel
          (Triolet_harness.Table.seconds t.Triolet_harness.Calibrate.c_time)
          (Triolet_harness.Table.seconds t.Triolet_harness.Calibrate.triolet_time)
          (Triolet_harness.Table.seconds t.Triolet_harness.Calibrate.eden_time))
      times;
    print_endline "all kernels verified";
    0
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Check that the C, Triolet and Eden styles of all four kernels agree")
    Term.(const run $ const ())

(* ---- Fault injection ---- *)

let fault_rate_arg =
  let doc =
    "Per-link fault rate used by fault injection: each of drop, \
     duplicate, corrupt and delay fires with this probability per \
     message."
  in
  Arg.(value & opt float 0.1 & info [ "fault-rate" ] ~docv:"P" ~doc)

let fault_seed_arg =
  let doc = "Seed of the deterministic fault injector." in
  Arg.(value & opt int 42 & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let faults_flag =
  let doc =
    "Inject seeded faults (message drop/duplicate/corrupt/delay plus a \
     node crash) into the distributed runtime, and recover from them."
  in
  Arg.(value & flag & info [ "faults" ] ~doc)

(* Fault-matrix mode: run every kernel under a set of failure
   scenarios and check each result against the fault-free reference. *)
let faults_cmd =
  let run nodes cores backend rate seed verbose =
    setup_logs verbose;
    apply_backend backend;
    Triolet.Exec.set_ambient
      (Triolet.Exec.make ~nodes ~cores_per_node:cores ());
    let module Kern = Triolet_kernels.Kernel in
    let module Table = Triolet_harness.Table in
    let crash_node = min 1 (nodes - 1) in
    (* Retry timeouts sized for the transport: the in-process mailbox
       turns messages around in microseconds, a forked node takes real
       scheduling and pipe latency, so the process backend gets a much
       larger base timeout to keep delayed frames from triggering retry
       storms. *)
    let base_timeout, max_timeout =
      match backend with
      | Cluster.Process -> (Some 0.1, Some 1.0)
      | Cluster.Inprocess | Cluster.Flat -> (None, None)
    in
    let spec = Fault.spec ?base_timeout ?max_timeout in
    let scenarios =
      [
        ("drop+corrupt", spec ~seed ~drop:rate ~corrupt:rate ());
        ("dup+delay", spec ~seed ~duplicate:rate ~delay:rate ());
        ( "crash-before",
          spec ~seed ~crash:(crash_node, Fault.Before_work) () );
        ( "crash-during",
          spec ~seed ~crash:(crash_node, Fault.During_work) () );
        ( "everything",
          spec ~seed ~drop:rate ~duplicate:rate ~corrupt:rate ~delay:rate
            ~crash:(crash_node, Fault.After_work)
            ~stragglers:[ 0 ] () );
      ]
    in
    (* Every registered kernel at its tiny size class.  The first
       [check] call runs fault-free and pins the reference result; the
       scenario loop below re-runs under injected faults and compares.
       (cutcp merges float histograms in pool completion order, so its
       registry checker compares with the kernel's standard tolerance
       instead of exact equality.) *)
    let kernels =
      List.map
        (fun (module K : Kern.S) ->
          let inst = K.instance ~size:"tiny" () in
          ignore (inst.Kern.check ());
          (K.name, fun () -> inst.Kern.check ()))
        (Kern.all ())
    in
    let rows = ref [] in
    let all_ok = ref true in
    List.iter
      (fun (kname, check) ->
        List.iter
          (fun (sname, spec) ->
            let ok, delta =
              Stats.measure (fun () ->
                  Triolet.Exec.with_context
                    (Triolet.Exec.make ~faults:(Some spec) ())
                    (fun () -> check ()))
            in
            if not ok then all_ok := false;
            rows :=
              [
                kname; sname;
                (if ok then "ok" else "WRONG RESULT");
                string_of_int delta.Stats.faults_injected;
                string_of_int delta.Stats.retries;
                string_of_int delta.Stats.redeliveries;
                string_of_int delta.Stats.corrupt_drops;
                string_of_int delta.Stats.crashed_nodes;
              ]
              :: !rows)
          scenarios)
      kernels;
    Printf.printf
      "fault matrix: %d nodes x %d cores (%s), rate %.3f, seed %d\n" nodes
      cores (backend_name backend) rate seed;
    Table.print
      ([ "kernel"; "scenario"; "result"; "faults"; "retries"; "redeliv";
         "corrupt"; "crashes" ]
      :: List.rev !rows);
    if !all_ok then begin
      print_endline "all kernels correct under every fault scenario";
      0
    end
    else begin
      print_endline "FAILURE: some kernel produced a wrong result";
      1
    end
  in
  let nodes = Arg.(value & opt int 4 & info [ "nodes" ] ~doc:"Cluster nodes.") in
  let cores =
    Arg.(value & opt int 2 & info [ "cores" ] ~doc:"Cores per node.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run every kernel under a matrix of injected failures (drops, \
          duplicates, corruption, delays, node crashes, stragglers) and \
          verify the results still match the fault-free runs")
    Term.(const run $ nodes $ cores $ backend_arg $ fault_rate_arg
          $ fault_seed_arg $ verbose_arg)

(* Distributed-runtime demo with byte accounting and optional tracing. *)
let demo_cmd =
  let run nodes cores flat backend faults fault_rate fault_seed trace verbose
      =
    setup_logs verbose;
    apply_backend backend;
    Triolet.Exec.set_ambient
      (Triolet.Exec.make ~nodes ~cores_per_node:cores
         ~backend:(if flat then Cluster.Flat else backend)
         ());
    if faults then begin
      let base_timeout, max_timeout =
        match backend with
        | Cluster.Process -> (Some 0.1, Some 1.0)
        | Cluster.Inprocess | Cluster.Flat -> (None, None)
      in
      Triolet.Exec.set_ambient
        (Triolet.Exec.make
           ~faults:
             (Some
                (Fault.spec ?base_timeout ?max_timeout ~seed:fault_seed
              ~drop:fault_rate ~duplicate:fault_rate ~corrupt:fault_rate
              ~delay:fault_rate
                   ~crash:(min 1 (nodes - 1), Fault.During_work)
                   ()))
           ())
    end;
    let n = 1_000_000 in
    let xs = Float.Array.init n (fun i -> float_of_int (i mod 1000) /. 1000.0) in
    let ys = Float.Array.init n (fun i -> float_of_int ((i + 17) mod 1000) /. 1000.0) in
    Stats.reset ();
    if trace <> None then begin
      Obs.reset ();
      Obs.enable ()
    end;
    let t0 = Clock.monotonic_ns () in
    let dot, delta =
      Stats.measure (fun () ->
          Triolet.Iter.sum
            (Triolet.Iter.map
               (fun (x, y) -> x *. y)
               (Triolet.Iter.zip
                  (Triolet.Iter.par (Triolet.Iter.of_floatarray xs))
                  (Triolet.Iter.of_floatarray ys))))
    in
    let wall_ns = Clock.monotonic_ns () - t0 in
    Printf.printf
      "dot product of 2 x %d floats on a %dx%d %s cluster = %.4f\n" n nodes
      cores
      (if flat then "flat" else "two-level " ^ backend_name backend)
      dot;
    Printf.printf "messages: %d   bytes moved: %s   chunks: %d   steals: %d\n"
      delta.Stats.messages
      (Triolet_harness.Table.bytes delta.Stats.bytes_sent)
      delta.Stats.chunks_run delta.Stats.steals;
    if faults then
      Printf.printf
        "faults injected: %d   retries: %d   redeliveries: %d   corrupt \
         drops: %d   crashed nodes: %d\n"
        delta.Stats.faults_injected delta.Stats.retries
        delta.Stats.redeliveries delta.Stats.corrupt_drops
        delta.Stats.crashed_nodes;
    (match trace with
    | None -> ()
    | Some path ->
        Obs.disable ();
        Obs.write_trace path;
        Format.printf "%a" Obs.pp_aggregates (Obs.aggregates ());
        (* The cluster phases partition Cluster.run end to end, so
           their totals should account for nearly all of the wall time
           of a distributed run. *)
        let cluster_phases =
          [ "cluster.serialize"; "cluster.send"; "cluster.compute";
            "cluster.recv"; "cluster.merge" ]
        in
        let covered =
          List.fold_left (fun acc p -> acc + Obs.agg_total p) 0 cluster_phases
        in
        Printf.printf "wrote %s (%d events, %d dropped)\n" path
          (List.length (Obs.events ()))
          (Obs.dropped_spans ());
        Printf.printf
          "cluster phase coverage: %.1f%% of %.2f ms wall\n"
          (100.0 *. float_of_int covered /. float_of_int wall_ns)
          (float_of_int wall_ns /. 1e6));
    Triolet.Exec.set_ambient (Triolet.Exec.make ~faults:None ());
    0
  in
  let nodes = Arg.(value & opt int 4 & info [ "nodes" ] ~doc:"Cluster nodes.") in
  let cores =
    Arg.(value & opt int 2 & info [ "cores" ] ~doc:"Cores per node.")
  in
  let flat =
    Arg.(value & flag & info [ "flat" ] ~doc:"Flat (Eden-style) distribution.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record per-phase spans of the run and write them as a Chrome \
             trace_event JSON file (load in chrome://tracing or Perfetto).")
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"Distributed dot product on the in-process cluster, with byte accounting")
    Term.(const run $ nodes $ cores $ flat $ backend_arg $ faults_flag
          $ fault_rate_arg $ fault_seed_arg $ trace $ verbose_arg)

(* Bench-result regression gate. *)
let bench_cmd =
  let compare_flag =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:
            "Compare two bench result files (written by bench/main.exe as \
             BENCH_<family>.json or --json) and fail on regressions.")
  in
  let threshold =
    Arg.(
      value & opt float 0.15
      & info [ "threshold" ] ~docv:"T"
          ~doc:
            "Regression threshold as a fraction: a row regresses when \
             new/old > 1 + T.")
  in
  let old_file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"OLD" ~doc:"Baseline file.")
  in
  let new_file =
    Arg.(value & pos 1 (some file) None & info [] ~docv:"NEW" ~doc:"Candidate file.")
  in
  let run compare threshold old_file new_file =
    let module BC = Triolet_harness.Bench_compare in
    match (compare, old_file, new_file) with
    | true, Some old_f, Some new_f -> (
        match BC.compare_files ~threshold old_f new_f with
        | report ->
            Format.printf "%a" (BC.pp_report ~threshold) report;
            if report.BC.regressions = [] then 0 else 1
        | exception Triolet_obs.Json.Parse_error msg ->
            Printf.eprintf "bench: malformed input: %s\n" msg;
            2)
    | true, _, _ ->
        prerr_endline "bench: --compare needs OLD and NEW result files";
        2
    | false, _, _ ->
        print_endline
          "run benchmarks with:  dune exec bench/main.exe -- --help\n\
           compare results with: triolet bench --compare OLD NEW";
        0
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Compare bench result files and exit nonzero on per-row slowdowns \
          beyond the threshold")
    Term.(const run $ compare_flag $ threshold $ old_file $ new_file)

(* Static analysis gate: reify every kernel's pipeline into a plan,
   audit the plans, scan for unchecked unsafe accesses, and
   exhaustively model-check the concurrency protocols.  Exit status 1
   on any error-severity finding or protocol violation, so CI can use
   it as a lint gate. *)
let analyze_cmd =
  let run nodes cores root locks protocol dot_file verbose =
    setup_logs verbose;
    Triolet.Exec.set_ambient
      (Triolet.Exec.make ~nodes ~cores_per_node:cores ());
    let module Kern = Triolet_kernels.Kernel in
    let module Plan = Triolet_analysis.Plan in
    let module Passes = Triolet_analysis.Passes in
    (* One plan per registered analyzer hook, reified at the tiny size
       class — registry iteration, no per-kernel match arms. *)
    let plans =
      List.concat_map
        (fun (module K : Kern.S) ->
          let inst = K.instance ~size:"tiny" () in
          List.map
            (fun (pname, pipe) ->
              match pipe with
              | Kern.Pipe_1d it -> Plan.of_iter ~name:pname it
              | Kern.Pipe_2d it -> Plan.of_iter2 ~name:pname it)
            (inst.Kern.pipelines ()))
        (Kern.all ())
    in
    print_endline "== plans ==";
    List.iter (fun p -> print_endline (Plan.to_string p)) plans;
    let lock_findings, lock_edges =
      if locks then Triolet_analysis.Lockcheck.run ~root ()
      else ([], [])
    in
    if locks then begin
      print_endline "== lock graph ==";
      if lock_edges = [] then print_endline "(no nested acquisitions)"
      else
        List.iter
          (fun (e : Triolet_analysis.Lockcheck.edge) ->
            Printf.printf "%s -> %s (%s:%d%s)\n" e.from_lock e.to_lock
              e.file e.line
              (match e.via with Some v -> " via " ^ v | None -> ""))
          lock_edges;
      match dot_file with
      | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc
                (Triolet_analysis.Lockcheck.dot_of_edges lock_edges));
          Printf.printf "lock graph written to %s\n" path
      | None -> ()
    end;
    let protocol_findings =
      if protocol then Triolet_analysis.Protocol_lint.run ~root () else []
    in
    let findings =
      Passes.run_all plans
      @ Triolet_analysis.Unsafe_scan.run ~root ()
      @ lock_findings @ protocol_findings
    in
    print_endline "== findings ==";
    if findings = [] then print_endline "(none)"
    else List.iter (fun f -> print_endline (Passes.to_string f)) findings;
    print_endline "== protocol models ==";
    let reports =
      [
        Triolet_sim.Protocol_models.Wsdeque_model.check ();
        Triolet_sim.Protocol_models.Mailbox_model.check ();
      ]
      @
      if protocol then
        [
          Triolet_sim.Protocol_models.Heartbeat_model.check ();
          Triolet_sim.Protocol_models.Segment_model.check ();
        ]
      else []
    in
    List.iter
      (fun r -> print_endline (Triolet_sim.Modelcheck.report_to_string r))
      reports;
    let model_bad =
      List.exists
        (fun r -> r.Triolet_sim.Modelcheck.violation <> None)
        reports
    in
    if Passes.has_errors findings || model_bad then begin
      print_endline "analyze: FAILED";
      1
    end
    else begin
      print_endline "analyze: ok";
      0
    end
  in
  let nodes =
    Arg.(value & opt int 4 & info [ "nodes" ] ~doc:"Cluster nodes to plan for.")
  in
  let cores =
    Arg.(value & opt int 2 & info [ "cores" ] ~doc:"Cores per node to plan for.")
  in
  let root =
    Arg.(value & opt string "."
         & info [ "root" ] ~docv:"DIR"
             ~doc:"Source tree root for the unsafe-access scan.")
  in
  let locks =
    Arg.(
      value & flag
      & info [ "locks" ]
          ~doc:
            "Run the concurrency lint: lock-order inversions, blocking \
             calls under a lock, Condition.wait shape, and the \
             Mutex/Atomic introduction ratchet.")
  in
  let protocol =
    Arg.(
      value & flag
      & info [ "protocol" ]
          ~doc:
            "Audit the reified wire-protocol spec (completeness, drift \
             against sent frame kinds) and exhaustively model-check the \
             supervisor heartbeat protocol.")
  in
  let dot_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:"With --locks, write the lock-acquisition graph as Graphviz.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static analysis gate: audit reified kernel plans (coverage, \
          fusion, serialization, grain), scan for unchecked unsafe \
          accesses, lint the runtime's lock discipline and wire-protocol \
          spec, and exhaustively model-check the concurrency protocols")
    Term.(const run $ nodes $ cores $ root $ locks $ protocol $ dot_file $ verbose_arg)

(* Long-lived supervised service demo: keep a forked fabric warm, push
   an open-loop request stream at it, optionally kill children along
   the way, and report tail latency plus supervision counters. *)
let serve_cmd =
  let module Service = Triolet_runtime.Service in
  let module Rng = Triolet_base.Rng in
  let module Payload = Triolet_base.Payload in
  let double_inc ~node:_ ~pool:_ payload =
    match payload with
    | [ Payload.Ints a ] ->
        [ Payload.Ints (Array.map (fun x -> (2 * x) + 1) a) ]
    | _ -> failwith "serve: bad payload"
  in
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let run nodes cores duration rate clients queue_bound slices deadline
      kill_every heartbeat_loss fault_seed verbose =
    setup_logs verbose;
    if rate <= 0.0 then invalid_arg "serve: --rate must be positive";
    if duration <= 0.0 then invalid_arg "serve: --duration must be positive";
    if clients < 1 then invalid_arg "serve: --clients must be >= 1";
    let faults =
      if heartbeat_loss > 0.0 then
        Some (Fault.spec ~heartbeat_loss ~seed:fault_seed ())
      else None
    in
    let cfg =
      {
        Service.default_config with
        Service.nodes;
        cores_per_node = cores;
        queue_bound;
        heartbeat_interval = 0.02;
        faults;
      }
    in
    (* The service forks and re-forks; nothing in this parent may ever
       spawn a domain, so all client concurrency below is systhreads. *)
    let t = Service.create ~cfg ~work:double_inc () in
    Fun.protect
      ~finally:(fun () -> Service.shutdown ~grace:2.0 t)
      (fun () ->
        let total = int_of_float (rate *. duration) in
        let lock = Mutex.create () in
        let next_arrival = ref 0 in
        let completed = ref 0 in
        let shed = ref 0 in
        let expired = ref 0 in
        let failed = ref 0 in
        let wrong = ref 0 in
        let latencies = ref [] in
        let kill_rng = Rng.create fault_seed in
        let start = Clock.monotonic_ns () in
        let client () =
          let rec loop () =
            Mutex.lock lock;
            let i = !next_arrival in
            if i >= total then Mutex.unlock lock
            else begin
              incr next_arrival;
              Mutex.unlock lock;
              (* Open loop: arrival i is due at start + i/rate whatever
                 the service is doing; a late pickup submits at once. *)
              let due =
                start + int_of_float (float_of_int i /. rate *. 1e9)
              in
              let now = Clock.monotonic_ns () in
              if due > now then
                Unix.sleepf (float_of_int (due - now) /. 1e9);
              let payloads =
                Array.init slices (fun s ->
                    [ Payload.Ints (Array.init 8 (fun j -> i + (s * 100) + j)) ])
              in
              let t0 = Clock.monotonic_ns () in
              (match Service.submit ?deadline t payloads with
              | Ok results ->
                  let dt = Clock.monotonic_ns () - t0 in
                  let exact =
                    Array.for_all2
                      (fun sent got ->
                        match (sent, got) with
                        | [ Payload.Ints a ], [ Payload.Ints b ] ->
                            b = Array.map (fun x -> (2 * x) + 1) a
                        | _ -> false)
                      payloads results
                  in
                  Mutex.lock lock;
                  incr completed;
                  if not exact then incr wrong;
                  latencies := float_of_int dt /. 1e6 :: !latencies;
                  if
                    kill_every > 0
                    && !completed mod kill_every = 0
                  then begin
                    let pids = Service.node_pids t in
                    let victim = Rng.int kill_rng nodes in
                    (try Unix.kill pids.(victim) Sys.sigkill
                     with Unix.Unix_error _ -> ())
                  end;
                  Mutex.unlock lock
              | Error Service.Overloaded ->
                  Mutex.lock lock;
                  incr shed;
                  Mutex.unlock lock
              | Error Service.Deadline_expired ->
                  Mutex.lock lock;
                  incr expired;
                  Mutex.unlock lock
              | Error (Service.Draining | Service.Failed _) ->
                  Mutex.lock lock;
                  incr failed;
                  Mutex.unlock lock);
              loop ()
            end
          in
          loop ()
        in
        let threads = List.init clients (fun _ -> Thread.create client ()) in
        List.iter Thread.join threads;
        let wall =
          float_of_int (Clock.monotonic_ns () - start) /. 1e9
        in
        let sorted = Array.of_list !latencies in
        Array.sort compare sorted;
        let module Table = Triolet_harness.Table in
        Printf.printf
          "service: %d nodes x %d cores, %d req at %.0f req/s (open loop), \
           %d clients\n"
          nodes cores total rate clients;
        Table.print
          [
            [ "metric"; "value" ];
            [ "wall time"; Printf.sprintf "%.2f s" wall ];
            [ "completed"; string_of_int !completed ];
            [ "wrong results"; string_of_int !wrong ];
            [ "shed (overloaded)"; string_of_int !shed ];
            [ "deadline expired"; string_of_int !expired ];
            [ "failed"; string_of_int !failed ];
            [ "shed rate";
              Printf.sprintf "%.1f%%"
                (100.0 *. float_of_int !shed /. float_of_int (max 1 total)) ];
            [ "p50 latency"; Printf.sprintf "%.2f ms" (percentile sorted 0.50) ];
            [ "p99 latency"; Printf.sprintf "%.2f ms" (percentile sorted 0.99) ];
            [ "respawns"; string_of_int (Service.respawns t) ];
            [ "heartbeat misses"; string_of_int (Service.heartbeat_misses t) ];
            [ "live nodes"; string_of_int (List.length (Service.live_nodes t)) ];
          ];
        (match Service.fault_counters t with
        | Some c -> Format.printf "injected: %a@." Fault.pp_counters c
        | None -> ());
        if !wrong > 0 || !failed > 0 then 1 else 0)
  in
  let nodes = Arg.(value & opt int 4 & info [ "nodes" ] ~doc:"Service nodes.") in
  let cores =
    Arg.(value & opt int 2 & info [ "cores" ] ~doc:"Cores per node.")
  in
  let duration =
    Arg.(value & opt float 2.0
         & info [ "duration" ] ~docv:"S" ~doc:"Load duration in seconds.")
  in
  let rate =
    Arg.(value & opt float 200.0
         & info [ "rate" ] ~docv:"R"
             ~doc:"Open-loop arrival rate, requests per second.")
  in
  let clients =
    Arg.(value & opt int 8
         & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client threads.")
  in
  let queue_bound =
    Arg.(value & opt int 64
         & info [ "queue-bound" ] ~docv:"N"
             ~doc:"Admission-queue high-water mark; beyond it requests are \
                   rejected as overloaded.")
  in
  let slices =
    Arg.(value & opt int 4
         & info [ "slices" ] ~docv:"K" ~doc:"Slices per request.")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"S"
             ~doc:"Per-request compute budget in seconds; expired requests \
                   are cancelled, not computed.")
  in
  let kill_every =
    Arg.(value & opt int 0
         & info [ "kill-every" ] ~docv:"K"
             ~doc:"Chaos: SIGKILL a random child after every $(docv) \
                   completed requests (0 = off); the supervisor must \
                   respawn it.")
  in
  let heartbeat_loss =
    Arg.(value & opt float 0.0
         & info [ "heartbeat-loss" ] ~docv:"P"
             ~doc:"Chaos: drop each heartbeat reply with this probability \
                   (seeded), forcing miss-threshold kills and respawns.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived supervised service demo: open-loop load against a \
          forked node fabric with heartbeats, respawn, deadlines and \
          overload shedding; reports p50/p99 latency and supervision \
          counters")
    Term.(const run $ nodes $ cores $ duration $ rate $ clients $ queue_bound
          $ slices $ deadline $ kill_every $ heartbeat_loss $ fault_seed_arg
          $ verbose_arg)

(* ---- Cost-model-driven auto-mapper ---- *)

let autotune_cmd =
  let module Tune = Triolet_tune.Tune in
  let module Kern = Triolet_kernels.Kernel in
  let module Mapping = Triolet.Mapping in
  let module Table = Triolet_harness.Table in
  let module Json = Triolet_obs.Json in
  let print_ranked ~top scores =
    let rows =
      List.filteri (fun i _ -> i < top) scores
      |> List.map (fun s ->
             let c = s.Tune.cand in
             [
               string_of_int c.Tune.nodes;
               string_of_int c.Tune.cores_per_node;
               Cluster.backend_to_string c.Tune.backend;
               (match c.Tune.grain with
               | None -> "auto"
               | Some g -> string_of_int g);
               string_of_int c.Tune.chunk_multiplier;
               Table.seconds s.Tune.host_s;
               Table.seconds s.Tune.cluster_s;
             ])
    in
    Table.print
      ([ "nodes"; "cores"; "backend"; "grain"; "chunk_x"; "pred host";
         "pred cluster" ]
      :: rows)
  in
  let score_json s =
    let c = s.Tune.cand in
    Json.Obj
      [
        ("nodes", Json.Num (float_of_int c.Tune.nodes));
        ("cores_per_node", Json.Num (float_of_int c.Tune.cores_per_node));
        ("backend", Json.Str (Cluster.backend_to_string c.Tune.backend));
        ( "grain",
          match c.Tune.grain with
          | None -> Json.Null
          | Some g -> Json.Num (float_of_int g) );
        ( "chunk_multiplier",
          Json.Num (float_of_int c.Tune.chunk_multiplier) );
        ("predicted_host_s", Json.Num s.Tune.host_s);
        ("predicted_cluster_s", Json.Num s.Tune.cluster_s);
      ]
  in
  let run check out kernel size objective top table reps no_validate verbose =
    setup_logs verbose;
    if check then begin
      match Mapping.load out with
      | Error msg ->
          Printf.eprintf "autotune --check: cannot read %s: %s\n%!" out msg;
          2
      | Ok file -> (
          match Tune.check file with
          | Tune.Check_ok ->
              Printf.printf
                "autotune --check: %s ok (%d entries, objective %s)\n" out
                (List.length file.Mapping.entries)
                file.Mapping.objective;
              0
          | Tune.Check_drift issues ->
              Printf.eprintf
                "autotune --check: %s has drifted from the current \
                 registry/model:\n"
                out;
              List.iter (fun i -> Printf.eprintf "  - %s\n" i) issues;
              Printf.eprintf "re-run `triolet autotune` to regenerate it\n%!";
              1)
    end
    else begin
      (* Tuning measures at explicit contexts; installing the current
         context as explicit ambient keeps any already-checked-in
         mapping file from steering the very runs that regenerate it. *)
      Triolet.Exec.set_ambient (Triolet.Exec.current ());
      let selected =
        match kernel with
        | None -> Kern.all ()
        | Some k -> (
            match Kern.find k with
            | Some m -> [ m ]
            | None ->
                invalid_arg
                  (Printf.sprintf "autotune: unknown kernel %S (valid: %s)" k
                     (String.concat ", " (Kern.names ()))))
      in
      Printf.printf "measuring machine rates...\n%!";
      let rates = Triolet_kernels.Models.measure_rates () in
      let results =
        List.map
          (fun (module K : Kern.S) ->
            let size = Option.value size ~default:K.default_size in
            let inst = K.instance ~size () in
            Printf.printf "\ntuning %s/%s (%d work units)...\n%!" K.name size
              inst.Kern.work_units;
            let entry, ranked =
              Tune.tune_instance ~objective ~reps ~validate:(not no_validate)
                ~rates inst
            in
            print_ranked ~top ranked;
            (match (entry.Mapping.measured_s, entry.Mapping.delta) with
            | Some m, Some d ->
                Printf.printf
                  "%s/%s: predicted %s, measured %s (delta %.1f%%)\n%!" K.name
                  size
                  (Table.seconds entry.Mapping.predicted_s)
                  (Table.seconds m) (100.0 *. d)
            | _ ->
                Printf.printf "%s/%s: predicted %s (not validated)\n%!" K.name
                  size
                  (Table.seconds entry.Mapping.predicted_s));
            (entry, (K.name, size, ranked)))
          selected
      in
      let file =
        {
          Mapping.version = Mapping.schema_version;
          objective = Tune.objective_to_string objective;
          host_cores = Tune.default_host_cores ();
          rates = Tune.rates_to_assoc rates;
          entries = List.map fst results;
        }
      in
      Mapping.save out file;
      Printf.printf "\nwrote %s (%d entries)\n" out (List.length file.entries);
      (match table with
      | None -> ()
      | Some path ->
          let tables =
            Json.Arr
              (List.map
                 (fun (_, (k, size, ranked)) ->
                   Json.Obj
                     [
                       ("kernel", Json.Str k);
                       ("size", Json.Str size);
                       ("ranked", Json.Arr (List.map score_json ranked));
                     ])
                 results)
          in
          Json.to_file path tables;
          Printf.printf "wrote ranked-candidates table to %s\n" path);
      let worst =
        List.fold_left
          (fun acc (e, _) ->
            match e.Mapping.delta with Some d -> max acc d | None -> acc)
          0.0 results
      in
      if worst > 0.25 then
        Printf.eprintf
          "warning: worst predicted-vs-measured delta %.1f%% exceeds 25%%\n%!"
          (100.0 *. worst);
      0
    end
  in
  let check_flag =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Re-validate the mapping file against the current kernel \
             registry and simulator without re-measuring (exit 1 on drift, \
             2 if the file is unreadable or has a mismatched schema).")
  in
  let out =
    Arg.(
      value
      & opt string "tune/MAPPINGS.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Mapping file to write (or to read with $(b,--check)).")
  in
  let kernel =
    Arg.(
      value
      & opt (some string) None
      & info [ "kernel" ] ~docv:"K"
          ~doc:"Tune only this kernel (default: every registered kernel).")
  in
  let size =
    Arg.(
      value
      & opt (some string) None
      & info [ "size" ] ~docv:"S"
          ~doc:
            "Size class to tune at (default: each kernel's default size \
             class).")
  in
  let objective =
    Arg.(
      value
      & opt (enum [ ("host", Tune.Host); ("cluster", Tune.Cluster) ]) Tune.Host
      & info [ "objective" ] ~docv:"OBJ"
          ~doc:
            "Ranking objective: $(b,host) ranks by makespan projected onto \
             this machine (validatable), $(b,cluster) by the abstract \
             simulated cluster makespan.")
  in
  let top =
    Arg.(
      value & opt int 8
      & info [ "top" ] ~docv:"N" ~doc:"Show the N best candidates per kernel.")
  in
  let table =
    Arg.(
      value
      & opt (some string) None
      & info [ "table" ] ~docv:"FILE"
          ~doc:"Also write the full ranked-candidates tables as JSON.")
  in
  let reps =
    Arg.(
      value & opt int 3
      & info [ "reps" ] ~docv:"R" ~doc:"Best-of-R timing repetitions.")
  in
  let no_validate =
    Arg.(
      value & flag
      & info [ "no-validate" ]
          ~doc:
            "Skip the measured run at the winning context (faster; the \
             mapping records no delta).")
  in
  Cmd.v
    (Cmd.info "autotune"
       ~doc:
         "Search execution contexts per kernel with the calibrated cost \
          model, validate the winner against a real run, and write the \
          mapping file that run_triolet consults by default")
    Term.(
      const run $ check_flag $ out $ kernel $ size $ objective $ top $ table
      $ reps $ no_validate $ verbose_arg)

let () =
  let info =
    Cmd.info "triolet" ~version:"1.0.0"
      ~doc:"Reproduction of Triolet (PPoPP 2014): figures, ablations, demos"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            fig_cmd; summary_cmd; ablation_cmd; all_cmd; verify_cmd; demo_cmd;
            sim_cmd; faults_cmd; analyze_cmd; bench_cmd; serve_cmd;
            autotune_cmd;
          ]))
